(* Typed system-call requests and results.

   The simulator dispatches on these values, the MVEE monitors compare them
   for divergence (structural equality plays the role of GHUMVEE's deep
   argument comparison), and the replication buffer serializes them. Raw
   userspace pointers never appear here except as opaque [int64] cookies
   (epoll user data, futex words), matching the cases the paper calls out as
   needing special treatment under diversification. *)

type fd = int

type open_flags = {
  read : bool;
  write : bool;
  create : bool;
  trunc : bool;
  append : bool;
  nonblock : bool;
}

let o_rdonly = { read = true; write = false; create = false; trunc = false; append = false; nonblock = false }
let o_wronly = { read = false; write = true; create = false; trunc = false; append = false; nonblock = false }
let o_rdwr = { read = true; write = true; create = false; trunc = false; append = false; nonblock = false }

type whence = Seek_set | Seek_cur | Seek_end

type prot = { pr : bool; pw : bool; px : bool }

type map_kind = Map_anon | Map_shared_anon | Map_file of fd

type futex_op =
  | Futex_wait of { addr : int64; expected : int; timeout_ns : int option }
  | Futex_wake of { addr : int64; count : int }

type fcntl_op = F_getfl | F_setfl of { nonblock : bool } | F_dupfd of int

type ioctl_op = Fionread | Fionbio of bool | Tiocgwinsz

type poll_events = { pollin : bool; pollout : bool; pollhup : bool; pollerr : bool }

let ev_none = { pollin = false; pollout = false; pollhup = false; pollerr = false }
let ev_in = { ev_none with pollin = true }
let ev_out = { ev_none with pollout = true }

type epoll_op = Epoll_add | Epoll_mod | Epoll_del

type flock_op = Lock_sh | Lock_ex | Lock_un

type sock_domain = Af_inet | Af_unix

type sock_type = Sock_stream | Sock_dgram

type shutdown_how = Shut_rd | Shut_wr | Shut_rdwr

type sig_action = Sig_default | Sig_ignore | Sig_handler of int
(* [Sig_handler id]: logical handler identity; the actual closure lives in
   the program's handler table. Diversified replicas would have different
   handler addresses but the same logical id. *)

type sigmask_how = Sig_block | Sig_unblock | Sig_setmask

type stat_info = {
  st_ino : int;
  st_size : int;
  st_kind : [ `Reg | `Dir | `Fifo | `Sock | `Special ];
  st_mtime_ns : int;
}

type itimer_spec = { interval_ns : int; value_ns : int }

type call =
  (* identity / time queries *)
  | Gettimeofday
  | Clock_gettime of [ `Realtime | `Monotonic ]
  | Time
  | Getpid
  | Gettid
  | Getpgrp
  | Getppid
  | Getgid
  | Getegid
  | Getuid
  | Geteuid
  | Getcwd
  | Getpriority
  | Getrusage
  | Times
  | Capget
  | Getitimer
  | Sysinfo
  | Uname
  | Sched_yield
  | Nanosleep of int
  | Getpgid
  | Getsid
  | Getrlimit of int (* resource id *)
  | Sched_getaffinity
  | Clock_getres
  | Getrandom of int (* byte count; results must be replicated verbatim *)
  (* synchronization / fd control *)
  | Futex of futex_op
  | Ioctl of fd * ioctl_op
  | Fcntl of fd * fcntl_op
  (* filesystem queries *)
  | Access of string
  | Faccessat of string
  | Lseek of fd * int * whence
  | Stat of string
  | Lstat of string
  | Fstat of fd
  | Fstatat of string
  | Getdents of fd
  | Readlink of string
  | Readlinkat of string
  | Getxattr of string * string
  | Lgetxattr of string * string
  | Fgetxattr of fd * string
  | Alarm of int (* seconds; 0 cancels *)
  | Setitimer of itimer_spec
  | Timerfd_gettime of fd
  | Madvise of { addr : int64; len : int }
  | Fadvise64 of fd
  | Statfs of string
  | Fstatfs of fd
  | Getdents64 of fd
  | Readahead of fd
  | Mincore of { addr : int64; len : int }
  (* read family *)
  | Read of fd * int
  | Readv of fd * int list (* iovec lengths *)
  | Pread64 of fd * int * int (* fd, count, offset *)
  | Preadv of fd * int list * int
  | Select of { readfds : fd list; writefds : fd list; timeout_ns : int option }
  | Poll of { fds : (fd * poll_events) list; timeout_ns : int option }
  | Pselect6 of { readfds : fd list; writefds : fd list; timeout_ns : int option }
  | Ppoll of { fds : (fd * poll_events) list; timeout_ns : int option }
  (* sync family *)
  | Sync
  | Syncfs of fd
  | Fsync of fd
  | Fdatasync of fd
  | Timerfd_settime of fd * itimer_spec
  | Msync of { addr : int64; len : int }
  | Flock of fd * flock_op
  | Chmod of string * int
  | Fchmod of fd * int
  | Chown of string * int * int
  | Utimensat of string
  (* write family *)
  | Write of fd * string
  | Writev of fd * string list
  | Pwrite64 of fd * string * int
  | Pwritev of fd * string list * int
  (* socket read family *)
  | Epoll_wait of { epfd : fd; max_events : int; timeout_ns : int option }
  | Recvfrom of fd * int
  | Recvmsg of fd * int
  | Recvmmsg of fd * int * int (* fd, msgs, bytes each *)
  | Getsockname of fd
  | Getpeername of fd
  | Getsockopt of fd * int
  (* socket write family *)
  | Sendto of fd * string
  | Sendmsg of fd * string
  | Sendmmsg of fd * string list
  | Sendfile of { out_fd : fd; in_fd : fd; count : int }
  | Epoll_ctl of { epfd : fd; op : epoll_op; fd : fd; events : poll_events; user_data : int64 }
  | Setsockopt of fd * int * int
  | Shutdown of fd * shutdown_how
  (* fd lifecycle *)
  | Open of string * open_flags
  | Openat of string * open_flags
  | Creat of string
  | Close of fd
  | Dup of fd
  | Dup2 of fd * fd
  | Dup3 of fd * fd
  | Pipe
  | Pipe2 of { nonblock : bool }
  | Eventfd of int (* initial counter *)
  | Socket of sock_domain * sock_type
  | Socketpair of sock_domain * sock_type
  | Bind of fd * int (* port *)
  | Listen of fd * int (* backlog *)
  | Accept of fd
  | Accept4 of { fd : fd; nonblock : bool }
  | Connect of fd * int (* port on the simulated network *)
  | Epoll_create
  | Timerfd_create
  | Unlink of string
  | Rename of string * string
  | Mkdir of string
  | Rmdir of string
  | Truncate of string * int
  | Ftruncate of fd * int
  | Mkdirat of string
  | Unlinkat of string
  | Renameat of string * string
  | Link of string * string
  | Linkat of string * string
  | Symlink of string * string
  | Symlinkat of string * string
  | Umask of int
  (* memory management *)
  | Mmap of { len : int; prot : prot; kind : map_kind }
  | Munmap of { addr : int64; len : int }
  | Mprotect of { addr : int64; len : int; prot : prot }
  | Mremap of { addr : int64; old_len : int; new_len : int }
  | Brk of int
  | Mlock of { addr : int64; len : int }
  | Munlock of { addr : int64; len : int }
  (* process / thread lifecycle *)
  | Clone of int (* entry index into the program's thread table *)
  | Fork
  | Execve of string
  | Exit of int
  | Exit_group of int
  | Wait4 of int (* pid, -1 for any *)
  | Kill of int * int (* pid, signal *)
  | Tgkill of int * int * int (* pid, tid, signal *)
  | Setrlimit of int * int
  | Prlimit64 of int * int
  | Sched_setaffinity of int (* cpu mask *)
  | Setsid
  (* signal handling *)
  | Rt_sigaction of int * sig_action
  | Rt_sigprocmask of sigmask_how * int list
  | Rt_sigreturn
  | Sigaltstack
  | Pause
  (* System V shared memory *)
  | Shmget of { key : int; size : int; create : bool }
  | Shmat of { shmid : int; readonly : bool }
  | Shmdt of { addr : int64 }
  | Shmctl of { shmid : int; rmid : bool }
  (* ReMon registration (Section 3.5) *)
  | Ipmon_register of { calls : Sysno.t list; rb_addr : int64; entry_addr : int64 }

type accept_info = { conn_fd : fd; peer_port : int }

type result =
  | Ok_unit
  | Ok_int of int
  | Ok_int64 of int64
  | Ok_data of string (* read-like results carry the bytes *)
  | Ok_str of string (* getcwd, readlink, uname ... *)
  | Ok_stat of stat_info
  | Ok_pair of fd * fd (* pipe, socketpair *)
  | Ok_poll of (fd * poll_events) list
  | Ok_epoll of (int64 * poll_events) list (* (user_data, events) *)
  | Ok_accept of accept_info
  | Ok_dents of string list
  | Ok_itimer of itimer_spec
  | Error of Errno.t

(* ------------------------------------------------------------------ *)

let number : call -> Sysno.t = function
  | Gettimeofday -> Sysno.Gettimeofday
  | Clock_gettime _ -> Sysno.Clock_gettime
  | Time -> Sysno.Time
  | Getpid -> Sysno.Getpid
  | Gettid -> Sysno.Gettid
  | Getpgrp -> Sysno.Getpgrp
  | Getppid -> Sysno.Getppid
  | Getgid -> Sysno.Getgid
  | Getegid -> Sysno.Getegid
  | Getuid -> Sysno.Getuid
  | Geteuid -> Sysno.Geteuid
  | Getcwd -> Sysno.Getcwd
  | Getpriority -> Sysno.Getpriority
  | Getrusage -> Sysno.Getrusage
  | Times -> Sysno.Times
  | Capget -> Sysno.Capget
  | Getitimer -> Sysno.Getitimer
  | Sysinfo -> Sysno.Sysinfo
  | Uname -> Sysno.Uname
  | Sched_yield -> Sysno.Sched_yield
  | Nanosleep _ -> Sysno.Nanosleep
  | Getpgid -> Sysno.Getpgid
  | Getsid -> Sysno.Getsid
  | Getrlimit _ -> Sysno.Getrlimit
  | Sched_getaffinity -> Sysno.Sched_getaffinity
  | Clock_getres -> Sysno.Clock_getres
  | Getrandom _ -> Sysno.Getrandom
  | Futex _ -> Sysno.Futex
  | Ioctl _ -> Sysno.Ioctl
  | Fcntl _ -> Sysno.Fcntl
  | Access _ -> Sysno.Access
  | Faccessat _ -> Sysno.Faccessat
  | Lseek _ -> Sysno.Lseek
  | Stat _ -> Sysno.Stat
  | Lstat _ -> Sysno.Lstat
  | Fstat _ -> Sysno.Fstat
  | Fstatat _ -> Sysno.Fstatat
  | Getdents _ -> Sysno.Getdents
  | Readlink _ -> Sysno.Readlink
  | Readlinkat _ -> Sysno.Readlinkat
  | Getxattr _ -> Sysno.Getxattr
  | Lgetxattr _ -> Sysno.Lgetxattr
  | Fgetxattr _ -> Sysno.Fgetxattr
  | Alarm _ -> Sysno.Alarm
  | Setitimer _ -> Sysno.Setitimer
  | Timerfd_gettime _ -> Sysno.Timerfd_gettime
  | Madvise _ -> Sysno.Madvise
  | Fadvise64 _ -> Sysno.Fadvise64
  | Statfs _ -> Sysno.Statfs
  | Fstatfs _ -> Sysno.Fstatfs
  | Getdents64 _ -> Sysno.Getdents64
  | Readahead _ -> Sysno.Readahead
  | Mincore _ -> Sysno.Mincore
  | Read _ -> Sysno.Read
  | Readv _ -> Sysno.Readv
  | Pread64 _ -> Sysno.Pread64
  | Preadv _ -> Sysno.Preadv
  | Select _ -> Sysno.Select
  | Poll _ -> Sysno.Poll
  | Pselect6 _ -> Sysno.Pselect6
  | Ppoll _ -> Sysno.Ppoll
  | Sync -> Sysno.Sync
  | Syncfs _ -> Sysno.Syncfs
  | Fsync _ -> Sysno.Fsync
  | Fdatasync _ -> Sysno.Fdatasync
  | Timerfd_settime _ -> Sysno.Timerfd_settime
  | Msync _ -> Sysno.Msync
  | Flock _ -> Sysno.Flock
  | Chmod _ -> Sysno.Chmod
  | Fchmod _ -> Sysno.Fchmod
  | Chown _ -> Sysno.Chown
  | Utimensat _ -> Sysno.Utimensat
  | Write _ -> Sysno.Write
  | Writev _ -> Sysno.Writev
  | Pwrite64 _ -> Sysno.Pwrite64
  | Pwritev _ -> Sysno.Pwritev
  | Epoll_wait _ -> Sysno.Epoll_wait
  | Recvfrom _ -> Sysno.Recvfrom
  | Recvmsg _ -> Sysno.Recvmsg
  | Recvmmsg _ -> Sysno.Recvmmsg
  | Getsockname _ -> Sysno.Getsockname
  | Getpeername _ -> Sysno.Getpeername
  | Getsockopt _ -> Sysno.Getsockopt
  | Sendto _ -> Sysno.Sendto
  | Sendmsg _ -> Sysno.Sendmsg
  | Sendmmsg _ -> Sysno.Sendmmsg
  | Sendfile _ -> Sysno.Sendfile
  | Epoll_ctl _ -> Sysno.Epoll_ctl
  | Setsockopt _ -> Sysno.Setsockopt
  | Shutdown _ -> Sysno.Shutdown
  | Open _ -> Sysno.Open
  | Openat _ -> Sysno.Openat
  | Creat _ -> Sysno.Creat
  | Close _ -> Sysno.Close
  | Dup _ -> Sysno.Dup
  | Dup2 _ -> Sysno.Dup2
  | Dup3 _ -> Sysno.Dup3
  | Pipe2 _ -> Sysno.Pipe2
  | Eventfd _ -> Sysno.Eventfd
  | Pipe -> Sysno.Pipe
  | Socket _ -> Sysno.Socket
  | Socketpair _ -> Sysno.Socketpair
  | Bind _ -> Sysno.Bind
  | Listen _ -> Sysno.Listen
  | Accept _ -> Sysno.Accept
  | Accept4 _ -> Sysno.Accept4
  | Connect _ -> Sysno.Connect
  | Epoll_create -> Sysno.Epoll_create
  | Timerfd_create -> Sysno.Timerfd_create
  | Unlink _ -> Sysno.Unlink
  | Rename _ -> Sysno.Rename
  | Mkdir _ -> Sysno.Mkdir
  | Rmdir _ -> Sysno.Rmdir
  | Truncate _ -> Sysno.Truncate
  | Ftruncate _ -> Sysno.Ftruncate
  | Mkdirat _ -> Sysno.Mkdirat
  | Unlinkat _ -> Sysno.Unlinkat
  | Renameat _ -> Sysno.Renameat
  | Link _ -> Sysno.Link
  | Linkat _ -> Sysno.Linkat
  | Symlink _ -> Sysno.Symlink
  | Symlinkat _ -> Sysno.Symlinkat
  | Umask _ -> Sysno.Umask
  | Mmap _ -> Sysno.Mmap
  | Munmap _ -> Sysno.Munmap
  | Mprotect _ -> Sysno.Mprotect
  | Mremap _ -> Sysno.Mremap
  | Brk _ -> Sysno.Brk
  | Mlock _ -> Sysno.Mlock
  | Munlock _ -> Sysno.Munlock
  | Clone _ -> Sysno.Clone
  | Fork -> Sysno.Fork
  | Execve _ -> Sysno.Execve
  | Exit _ -> Sysno.Exit
  | Exit_group _ -> Sysno.Exit_group
  | Wait4 _ -> Sysno.Wait4
  | Kill _ -> Sysno.Kill
  | Tgkill _ -> Sysno.Tgkill
  | Setrlimit _ -> Sysno.Setrlimit
  | Prlimit64 _ -> Sysno.Prlimit64
  | Sched_setaffinity _ -> Sysno.Sched_setaffinity
  | Setsid -> Sysno.Setsid
  | Rt_sigaction _ -> Sysno.Rt_sigaction
  | Rt_sigprocmask _ -> Sysno.Rt_sigprocmask
  | Rt_sigreturn -> Sysno.Rt_sigreturn
  | Sigaltstack -> Sysno.Sigaltstack
  | Pause -> Sysno.Pause
  | Shmget _ -> Sysno.Shmget
  | Shmat _ -> Sysno.Shmat
  | Shmdt _ -> Sysno.Shmdt
  | Shmctl _ -> Sysno.Shmctl
  | Ipmon_register _ -> Sysno.Ipmon_register

(* Maximum number of bytes this call's arguments occupy in the replication
   buffer (IP-MON's CALCSIZE step): register arguments count 8 bytes each;
   in-memory buffers count their (maximum) length. *)
let arg_bytes call =
  let regs n = 8 * n in
  let strs ss = List.fold_left (fun acc s -> acc + String.length s) 0 ss in
  match call with
  | Gettimeofday | Time | Getpid | Gettid | Getpgrp | Getppid | Getgid
  | Getegid | Getuid | Geteuid | Getcwd | Getpriority | Getrusage | Times
  | Capget | Getitimer | Sysinfo | Uname | Sched_yield | Sync | Pipe
  | Epoll_create | Timerfd_create | Fork | Rt_sigreturn | Sigaltstack | Pause
  | Getpgid | Getsid | Sched_getaffinity | Clock_getres | Setsid | Pipe2 _ ->
    regs 1
  | Clock_gettime _
  | Nanosleep _ | Alarm _ | Brk _ | Close _ | Dup _ | Fstat _ | Getdents _
  | Syncfs _ | Fsync _ | Fdatasync _ | Fadvise64 _ | Timerfd_gettime _
  | Exit _ | Exit_group _ | Wait4 _ | Execve _ | Clone _ | Getrlimit _
  | Fstatfs _ | Getdents64 _ | Readahead _ | Umask _ | Eventfd _
  | Sched_setaffinity _ ->
    regs 2
  | Futex _ | Madvise _ | Lseek _ | Ioctl _ | Fcntl _ | Dup2 _ | Dup3 _
  | Kill _ | Mincore _ | Msync _ | Flock _ | Fchmod _ | Mlock _ | Munlock _
  | Setrlimit _ | Prlimit64 _
  | Setitimer _ | Timerfd_settime _ | Bind _ | Listen _ | Accept _
  | Accept4 _ | Connect _ | Shutdown _ | Socket _ | Socketpair _
  | Getsockname _ | Getpeername _ | Ftruncate _ | Munmap _ | Mremap _
  | Shmget _ | Shmat _ | Shmdt _ | Shmctl _ ->
    regs 3
  | Tgkill _ | Getsockopt _ | Setsockopt _ | Mmap _ | Mprotect _
  | Sendfile _ | Rt_sigaction _ ->
    regs 4
  | Rt_sigprocmask ((_ : sigmask_how), sigs) -> regs 2 + (8 * List.length sigs)
  | Access p | Faccessat p | Stat p | Lstat p | Fstatat p | Readlink p
  | Readlinkat p | Unlink p | Mkdir p | Rmdir p | Creat p | Statfs p
  | Utimensat p | Mkdirat p | Unlinkat p ->
    regs 2 + String.length p
  | Open (p, _) | Openat (p, _) -> regs 3 + String.length p
  | Truncate (p, _) -> regs 3 + String.length p
  | Rename (a, b) | Renameat (a, b) | Link (a, b) | Linkat (a, b)
  | Symlink (a, b) | Symlinkat (a, b) ->
    regs 2 + String.length a + String.length b
  | Chmod (p, _) -> regs 3 + String.length p
  | Chown (p, _, _) -> regs 4 + String.length p
  | Getrandom n -> regs 2 + n
  | Getxattr (p, a) | Lgetxattr (p, a) -> regs 2 + String.length p + String.length a
  | Fgetxattr (_, a) -> regs 2 + String.length a
  (* Read-like calls reserve space for the result buffer (CALCSIZE's
     COUNTBUFFER(RET, ...) in Listing 1). *)
  | Read (_, n) | Recvfrom (_, n) | Recvmsg (_, n) | Pread64 (_, n, _) ->
    regs 3 + n
  | Readv (_, lens) | Preadv (_, lens, _) ->
    regs 3 + List.fold_left ( + ) 0 lens
  | Recvmmsg (_, msgs, each) -> regs 3 + (msgs * each)
  | Select { readfds; writefds; _ } | Pselect6 { readfds; writefds; _ } ->
    regs 3 + (8 * (List.length readfds + List.length writefds))
  | Poll { fds; _ } | Ppoll { fds; _ } -> regs 2 + (16 * List.length fds)
  | Epoll_wait { max_events; _ } -> regs 3 + (16 * max_events)
  | Epoll_ctl _ -> regs 5
  | Write (_, s) | Sendto (_, s) | Sendmsg (_, s) -> regs 3 + String.length s
  | Pwrite64 (_, s, _) -> regs 4 + String.length s
  | Writev (_, ss) | Sendmmsg (_, ss) -> regs 3 + strs ss
  | Pwritev (_, ss, _) -> regs 4 + strs ss
  | Ipmon_register { calls; _ } -> regs 3 + List.length calls

(* Bytes a result occupies in the replication buffer (POSTCALL's
   REPLICATEBUFFER step). *)
let result_bytes = function
  | Ok_unit | Ok_int _ | Ok_int64 _ | Error _ -> 8
  | Ok_data s | Ok_str s -> 8 + String.length s
  | Ok_stat _ -> 8 + 32
  | Ok_pair _ -> 16
  | Ok_poll l -> 8 + (16 * List.length l)
  | Ok_epoll l -> 8 + (16 * List.length l)
  | Ok_accept _ -> 16
  | Ok_dents l -> List.fold_left (fun acc s -> acc + 8 + String.length s) 8 l
  | Ok_itimer _ -> 24

(* Structural deep equality: the simulated analogue of GHUMVEE's
   CHECKREG/CHECKPOINTER/CHECKBUFFER argument comparison. *)
let equal_call (a : call) (b : call) = a = b
let equal_result (a : result) (b : result) = a = b

let is_error = function Error _ -> true | _ -> false

let pp_call fmt c = Format.fprintf fmt "%s" (Sysno.to_string (number c))

let pp_result fmt = function
  | Ok_unit -> Format.fprintf fmt "ok"
  | Ok_int n -> Format.fprintf fmt "%d" n
  | Ok_int64 n -> Format.fprintf fmt "%Ld" n
  | Ok_data s -> Format.fprintf fmt "<%d bytes>" (String.length s)
  | Ok_str s -> Format.fprintf fmt "%S" s
  | Ok_stat st -> Format.fprintf fmt "stat(size=%d)" st.st_size
  | Ok_pair (a, b) -> Format.fprintf fmt "(%d, %d)" a b
  | Ok_poll l -> Format.fprintf fmt "poll(%d ready)" (List.length l)
  | Ok_epoll l -> Format.fprintf fmt "epoll(%d events)" (List.length l)
  | Ok_accept { conn_fd; peer_port } -> Format.fprintf fmt "accept(fd=%d, peer=%d)" conn_fd peer_port
  | Ok_dents l -> Format.fprintf fmt "dents(%d)" (List.length l)
  | Ok_itimer _ -> Format.fprintf fmt "itimer"
  | Error e -> Format.fprintf fmt "-%s" (Errno.to_string e)

let to_string c = Sysno.to_string (number c)
