(** Cross-host network gateway: one per simulated host in a sharded (PDES)
    run. Models a cross-host TCP connection as two local stream pairs — an
    application endpoint and a gateway endpoint on each host — stitched
    together by a credit-windowed SYN/DATA/WINDOW/FIN/RST protocol over
    typed inter-host {!Link}s, so every dispatcher read/write/poll/
    backpressure path works unchanged. Installs itself as the kernel's
    {!Kstate.gateway}. *)

type t

val create : host:int -> Kstate.t -> t
(** Builds the gateway for host [host] and installs its hooks into the
    kernel. Routes and links are added afterwards. *)

val host : t -> int

val add_route : t -> port:int -> host:int -> unit
(** Declare statically that [port] is served from [host]. Connects to a
    port routed to another host go through the gateway; whether a listener
    actually exists there is resolved at SYN-arrival virtual time. *)

val set_link_resolver : t -> (dst:int -> Link.t) -> unit
(** Install the outbound-link resolver. The shard runner provides it so
    links can be created lazily on first use instead of as an eager
    all-pairs mesh. *)

val sends_to : t -> int -> bool
(** [sends_to t d] — may this host ever send a link message to host [d]
    before it next reacts to an inbound message? True iff a remote route
    points at [d] or a live connection's outbound link targets [d]. The
    adaptive-lookahead synchronizer uses the negation as a proof of
    idleness. *)

val apply : t -> src:int -> Link.msg -> unit
(** Apply one drained inbound message from host [src]. The shard runner
    must invoke this from a scheduled event of this host at the message's
    delivery time, in the canonical (at, src, seq) order. *)

val active_conns : t -> int

val stats : t -> int * int * int
(** [(opened, refused, resets)] lifetime tallies. *)
