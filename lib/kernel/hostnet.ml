(* Cross-host network gateway: one per simulated host in a sharded (PDES)
   run. Implements the [Kstate.gateway] hooks over typed inter-host links.

   A cross-host TCP connection is modeled as two *local* stream pairs, one
   per host, stitched together by the gateway:

     client app <-> client gw   ~~~ link (latency) ~~~   server gw <-> server app

   The application endpoints are ordinary [Net.stream]s, so every read,
   write, poll, epoll and backpressure path in the dispatcher works
   unchanged; only the gateway endpoints and the link protocol are new.
   The local pairs carry the intra-host hop (memcpy cost, ~2us); the wire
   propagation delay lives on the link and doubles as the conservative
   synchronizer's lookahead.

   Flow control is credit-based: the SYN/SYN_OK handshake advertises each
   application endpoint's receive buffer, DATA consumes credit, and WINDOW
   returns it as the application drains. A sender therefore never puts
   more in flight than the remote buffer can absorb — the same invariant
   [Net.send_start] enforces locally — and backpressure propagates
   end-to-end: remote buffer full -> no credit -> gateway buffer fills ->
   local writer blocks.

   Determinism: every hook runs inside a scheduled event of the owning
   host (a commit event, a syscall retry, or a link-message application
   event), so send timestamps and per-link sequence numbers are pure
   functions of virtual time. Connection ids are globally unique without
   coordination: initiator host index * 2^24 + a per-host counter.

   Scale: links are created lazily by the shard runner, so the gateway
   holds a resolver closure instead of an outbound-link table; connection
   lookup by stream rides the stream's [tag] field instead of a side
   table; and the gateway-side endpoint of a torn-down connection is
   recycled through [Net]'s stream pool once no scheduled commit can still
   reference it (its in-flight count is zero). The per-destination
   [targets] counts feed the adaptive-lookahead synchronizer: a host that
   neither routes to nor holds a connection towards host [d] provably
   cannot send to it. *)

module K = Kstate

(* fin_sent / fin_rcvd / rst_sent, packed so an idle connection record is
   8 words; a million-connection herd holds one live conn per endpoint
   host. *)
let c_fin_sent = 1
let c_fin_rcvd = 2
let c_rst_sent = 4

type conn = {
  cid : int;
  app : Net.stream; (* the endpoint owned by an application fd *)
  gw : Net.stream; (* our end of the local pair; buffers outbound data *)
  link : Link.t; (* outbound link towards the remote end *)
  mutable credits : int; (* bytes the remote app buffer can still absorb *)
  mutable progress : K.gw_progress ref option;
      (* Some on the initiating side until SYN_OK/SYN_REFUSED resolves *)
  mutable cflags : int;
}

type t = {
  host : int;
  k : K.t;
  routes : (int, int) Hashtbl.t; (* port -> owning host index *)
  mutable resolve : (dst:int -> Link.t) option;
      (* outbound links, provided by the shard runner (lazily created) *)
  conns : (int, conn) Hashtbl.t; (* conn id -> connection *)
  targets : (int, int) Hashtbl.t;
      (* destination host -> count of reasons we may send there
         (remote routes + live connections); see [sends_to] *)
  mutable next_conn : int;
  (* lifetime tallies *)
  mutable opened : int;
  mutable refused : int;
  mutable resets : int;
}

let conn_id_stride = 0x1_000_000

let host t = t.host

let incr_target t dst =
  Hashtbl.replace t.targets dst
    (match Hashtbl.find_opt t.targets dst with Some n -> n + 1 | None -> 1)

let decr_target t dst =
  match Hashtbl.find_opt t.targets dst with
  | Some n when n > 1 -> Hashtbl.replace t.targets dst (n - 1)
  | Some _ -> Hashtbl.remove t.targets dst
  | None -> ()

let add_route t ~port ~host =
  (match Hashtbl.find_opt t.routes port with
  | Some h when h = host -> ()
  | Some h ->
    if h <> t.host then decr_target t h;
    if host <> t.host then incr_target t host
  | None -> if host <> t.host then incr_target t host);
  Hashtbl.replace t.routes port host

let set_link_resolver t f = t.resolve <- Some f

let link_to t dst =
  match t.resolve with
  | Some f -> f ~dst
  | None -> invalid_arg "Hostnet: no link resolver installed"

let sends_to t dst = Hashtbl.mem t.targets dst

let active_conns t = Hashtbl.length t.conns

let stats t = (t.opened, t.refused, t.resets)

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping *)

let mark_remote (a : Net.stream) (b : Net.stream) =
  (* local: the pair is an intra-host hop (cheap, ~2us); remote: the
     dispatcher charges wire cost and calls the gateway hooks *)
  Net.mark_local a;
  Net.mark_local b;
  Net.mark_remote a;
  Net.mark_remote b

let register t c =
  Hashtbl.replace t.conns c.cid c;
  Net.set_tag c.app c.cid;
  Net.set_tag c.gw c.cid;
  incr_target t (Link.dst c.link)

(* The gateway endpoint is private to this module: no fd maps to it, no
   thread parks on it, and once its in-flight count is zero no scheduled
   commit event references it either — so it can be recycled immediately.
   (A nonzero in-flight count means an app-side write's commit is still
   scheduled; that stream is simply left to the GC.) The app endpoint is
   owned by a process fd and is never recycled here. *)
let unregister t c =
  Hashtbl.remove t.conns c.cid;
  Net.set_tag c.app (-1);
  Net.set_tag c.gw (-1);
  decr_target t (Link.dst c.link);
  if Net.in_flight c.gw = 0 then Net.release_stream t.k.K.net c.gw

let conn_of_stream t s =
  let tag = Net.tag s in
  if tag < 0 then None else Hashtbl.find_opt t.conns tag

let established c =
  match c.progress with None -> true | Some p -> !p = K.Gw_connected

(* Both directions torn down: release everything. Closing is idempotent
   and never drops committed-but-unread data (EOF is after-drain). *)
let maybe_gc t c =
  if c.cflags land (c_fin_sent lor c_fin_rcvd) = c_fin_sent lor c_fin_rcvd
  then begin
    Net.close_stream c.gw;
    Net.close_stream c.app;
    unregister t c
  end

(* Pump buffered outbound bytes onto the link, within credit; emit FIN
   once the application's write side is done and everything is flushed.
   Safe to call from any hook: it does nothing when there is nothing to
   do. *)
let pump t c =
  if established c && c.cflags land c_fin_sent = 0 then begin
    let now = Sched.now t.k.K.sched in
    let avail = Net.incoming_length c.gw in
    let n = min avail c.credits in
    if n > 0 then begin
      let data = Net.recv c.gw n in
      c.credits <- c.credits - n;
      Link.send c.link ~now (Link.Data { conn = c.cid; data });
      (* freed gateway buffer space: a blocked local writer may resume *)
      Sched.kick t.k.K.sched
    end;
    let flushed = Net.incoming_length c.gw = 0 && Net.in_flight c.gw = 0 in
    let write_done = Net.peer_gone c.gw || Net.wr_shut c.app in
    (* FIN only once flushed: the peer's own FIN says it stopped writing,
       not reading — a half-closed peer still wants our residue. Unflushable
       residue (receiver application gone, credit exhausted) is torn down by
       the RST path instead. *)
    if write_done && flushed then begin
      c.cflags <- c.cflags lor c_fin_sent;
      Link.send c.link ~now (Link.Fin { conn = c.cid });
      maybe_gc t c
    end
  end

(* ------------------------------------------------------------------ *)
(* Gateway hooks (outbound side) *)

let gw_has_port t port =
  match Hashtbl.find_opt t.routes port with
  | Some h -> h <> t.host
  | None -> false

let gw_connect t ~local_port ~port =
  let dst =
    match Hashtbl.find_opt t.routes port with
    | Some h when h <> t.host -> h
    | _ -> invalid_arg "Hostnet.gw_connect: port is not remotely routed"
  in
  let link = link_to t dst in
  let app, gw =
    Net.make_pair t.k.K.net ~client_port:local_port ~server_port:port
  in
  mark_remote app gw;
  let cid = (t.host * conn_id_stride) + t.next_conn in
  t.next_conn <- t.next_conn + 1;
  t.opened <- t.opened + 1;
  let progress = ref K.Gw_connecting in
  let c =
    { cid; app; gw; link; credits = 0; progress = Some progress; cflags = 0 }
  in
  register t c;
  Link.send link
    ~now:(Sched.now t.k.K.sched)
    (Link.Syn
       {
         conn = cid;
         src_port = local_port;
         dst_port = port;
         window = Net.rcvbuf app;
       });
  (app, progress)

let gw_poke t s =
  match conn_of_stream t s with Some c -> pump t c | None -> ()

let gw_drained t s n =
  if n > 0 then
    match conn_of_stream t s with
    | Some c when c.cflags land c_fin_sent = 0 ->
      Link.send c.link
        ~now:(Sched.now t.k.K.sched)
        (Link.Window { conn = c.cid; bytes = n })
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Inbound message application *)

(* Applies one drained link message. Must run as a scheduled event of this
   host at the message's delivery time [m.at] (the shard runner arranges
   that), so everything it does is ordinary in-timestamp-order simulation
   work. [src] is the sending host (for SYN replies; established
   connections carry their own outbound link). *)
let apply t ~src (m : Link.msg) =
  let k = t.k in
  let now = Sched.now k.K.sched in
  let reply payload = Link.send (link_to t src) ~now payload in
  match m.Link.payload with
  | Link.Syn { conn; src_port; dst_port; window } -> (
    match Net.find_listener k.K.net ~port:dst_port with
    | None ->
      t.refused <- t.refused + 1;
      reply (Link.Syn_refused { conn })
    | Some l ->
      let gw, app =
        Net.make_pair k.K.net ~client_port:src_port ~server_port:dst_port
      in
      mark_remote app gw;
      if Net.try_enqueue l app then begin
        let c =
          {
            cid = conn;
            app;
            gw;
            link = link_to t src;
            credits = window;
            progress = None;
            cflags = 0;
          }
        in
        register t c;
        t.opened <- t.opened + 1;
        reply (Link.Syn_ok { conn; window = Net.rcvbuf app });
        Sched.kick k.K.sched
      end
      else begin
        (* backlog full at SYN arrival, like the local enqueue check; the
           pair was never exposed to any process, so both halves recycle *)
        t.refused <- t.refused + 1;
        Net.close_stream gw;
        Net.close_stream app;
        Net.release_stream k.K.net gw;
        Net.release_stream k.K.net app;
        reply (Link.Syn_refused { conn })
      end)
  | Link.Syn_ok { conn; window } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.credits <- window;
      Net.set_connected c.app;
      (match c.progress with Some p -> p := K.Gw_connected | None -> ());
      pump t c;
      Sched.kick k.K.sched)
  | Link.Syn_refused { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      (match c.progress with Some p -> p := K.Gw_refused | None -> ());
      Net.close_stream c.gw;
      Net.close_stream c.app;
      unregister t c;
      Sched.kick k.K.sched)
  | Link.Data { conn; data } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> () (* both sides torn down already: late data is dropped *)
    | Some c ->
      if Net.peer_gone c.gw then begin
        (* the receiving application closed: a real stack answers
           data-after-close with RST *)
        if c.cflags land c_rst_sent = 0 then begin
          c.cflags <- c.cflags lor c_rst_sent;
          t.resets <- t.resets + 1;
          Link.send c.link ~now (Link.Rst { conn = c.cid })
        end
      end
      else begin
        Net.commit_inbound c.app data;
        Sched.kick k.K.sched
      end)
  | Link.Window { conn; bytes } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.credits <- c.credits + bytes;
      pump t c)
  | Link.Fin { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.cflags <- c.cflags lor c_fin_rcvd;
      (* half-close: the application observes EOF once it has drained,
         but may keep writing (its own close/SHUT_WR sends our FIN) *)
      Net.shutdown_wr c.gw;
      pump t c;
      maybe_gc t c;
      Sched.kick k.K.sched)
  | Link.Rst { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      t.resets <- t.resets + 1;
      Net.close_stream c.gw;
      Net.close_stream c.app;
      unregister t c;
      Sched.kick k.K.sched)

(* ------------------------------------------------------------------ *)

let create ~host k =
  let t =
    {
      host;
      k;
      routes = Hashtbl.create 16;
      resolve = None;
      conns = Hashtbl.create 32;
      targets = Hashtbl.create 8;
      next_conn = 0;
      opened = 0;
      refused = 0;
      resets = 0;
    }
  in
  k.K.gateway <-
    Some
      {
        K.gw_has_port = gw_has_port t;
        gw_connect = (fun ~local_port ~port -> gw_connect t ~local_port ~port);
        gw_poke = gw_poke t;
        gw_drained = gw_drained t;
      };
  t
