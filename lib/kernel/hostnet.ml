(* Cross-host network gateway: one per simulated host in a sharded (PDES)
   run. Implements the [Kstate.gateway] hooks over typed inter-host links.

   A cross-host TCP connection is modeled as two *local* stream pairs, one
   per host, stitched together by the gateway:

     client app <-> client gw   ~~~ link (latency) ~~~   server gw <-> server app

   The application endpoints are ordinary [Net.stream]s, so every read,
   write, poll, epoll and backpressure path in the dispatcher works
   unchanged; only the gateway endpoints and the link protocol are new.
   The local pairs carry the intra-host hop (memcpy cost, ~2us); the wire
   propagation delay lives on the link and doubles as the conservative
   synchronizer's lookahead.

   Flow control is credit-based: the SYN/SYN_OK handshake advertises each
   application endpoint's receive buffer, DATA consumes credit, and WINDOW
   returns it as the application drains. A sender therefore never puts
   more in flight than the remote buffer can absorb — the same invariant
   [Net.send_start] enforces locally — and backpressure propagates
   end-to-end: remote buffer full -> no credit -> gateway buffer fills ->
   local writer blocks.

   Determinism: every hook runs inside a scheduled event of the owning
   host (a commit event, a syscall retry, or a link-message application
   event), so send timestamps and per-link sequence numbers are pure
   functions of virtual time. Connection ids are globally unique without
   coordination: initiator host index * 2^24 + a per-host counter. *)

module K = Kstate

type conn = {
  cid : int;
  app : Net.stream; (* the endpoint owned by an application fd *)
  gw : Net.stream; (* our end of the local pair; buffers outbound data *)
  link : Link.t; (* outbound link towards the remote end *)
  mutable credits : int; (* bytes the remote app buffer can still absorb *)
  mutable progress : K.gw_progress ref option;
      (* Some on the initiating side until SYN_OK/SYN_REFUSED resolves *)
  mutable fin_sent : bool;
  mutable fin_rcvd : bool;
  mutable rst_sent : bool;
}

type t = {
  host : int;
  k : K.t;
  routes : (int, int) Hashtbl.t; (* port -> owning host index *)
  out : (int, Link.t) Hashtbl.t; (* destination host -> outbound link *)
  conns : (int, conn) Hashtbl.t; (* conn id -> connection *)
  by_sid : (int, conn) Hashtbl.t; (* app/gw stream sid -> connection *)
  mutable next_conn : int;
  (* lifetime tallies *)
  mutable opened : int;
  mutable refused : int;
  mutable resets : int;
}

let conn_id_stride = 0x1_000_000

let host t = t.host

let add_route t ~port ~host = Hashtbl.replace t.routes port host

let add_link t link =
  if Link.src link <> t.host then
    invalid_arg "Hostnet.add_link: link does not originate here";
  Hashtbl.replace t.out (Link.dst link) link

let active_conns t = Hashtbl.length t.conns

let stats t = (t.opened, t.refused, t.resets)

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping *)

let mark_remote (a : Net.stream) (b : Net.stream) =
  (* local: the pair is an intra-host hop (cheap, ~2us); remote: the
     dispatcher charges wire cost and calls the gateway hooks *)
  a.Net.local <- true;
  b.Net.local <- true;
  a.Net.remote <- true;
  b.Net.remote <- true

let register t c =
  Hashtbl.replace t.conns c.cid c;
  Hashtbl.replace t.by_sid c.app.Net.sid c;
  Hashtbl.replace t.by_sid c.gw.Net.sid c

let unregister t c =
  Hashtbl.remove t.conns c.cid;
  Hashtbl.remove t.by_sid c.app.Net.sid;
  Hashtbl.remove t.by_sid c.gw.Net.sid

let established c =
  match c.progress with None -> true | Some p -> !p = K.Gw_connected

(* Both directions torn down: release everything. Closing is idempotent
   and never drops committed-but-unread data (EOF is after-drain). *)
let maybe_gc t c =
  if c.fin_sent && c.fin_rcvd then begin
    Net.close_stream c.gw;
    Net.close_stream c.app;
    unregister t c
  end

(* Pump buffered outbound bytes onto the link, within credit; emit FIN
   once the application's write side is done and everything is flushed.
   Safe to call from any hook: it does nothing when there is nothing to
   do. *)
let pump t c =
  if established c && not c.fin_sent then begin
    let now = Sched.now t.k.K.sched in
    let avail = Bytestream.length c.gw.Net.incoming in
    let n = min avail c.credits in
    if n > 0 then begin
      let data = Net.recv c.gw n in
      c.credits <- c.credits - n;
      Link.send c.link ~now (Link.Data { conn = c.cid; data });
      (* freed gateway buffer space: a blocked local writer may resume *)
      Sched.kick t.k.K.sched
    end;
    let flushed =
      Bytestream.length c.gw.Net.incoming = 0 && c.gw.Net.in_flight = 0
    in
    let write_done = Net.peer_gone c.gw || c.app.Net.wr_shut in
    (* FIN only once flushed: the peer's own FIN says it stopped writing,
       not reading — a half-closed peer still wants our residue. Unflushable
       residue (receiver application gone, credit exhausted) is torn down by
       the RST path instead. *)
    if write_done && flushed then begin
      c.fin_sent <- true;
      Link.send c.link ~now (Link.Fin { conn = c.cid });
      maybe_gc t c
    end
  end

(* ------------------------------------------------------------------ *)
(* Gateway hooks (outbound side) *)

let gw_has_port t port =
  match Hashtbl.find_opt t.routes port with
  | Some h -> h <> t.host
  | None -> false

let gw_connect t ~local_port ~port =
  let dst =
    match Hashtbl.find_opt t.routes port with
    | Some h when h <> t.host -> h
    | _ -> invalid_arg "Hostnet.gw_connect: port is not remotely routed"
  in
  let link =
    match Hashtbl.find_opt t.out dst with
    | Some l -> l
    | None -> invalid_arg "Hostnet.gw_connect: no link to destination host"
  in
  let app, gw =
    Net.make_pair t.k.K.net ~client_port:local_port ~server_port:port
  in
  mark_remote app gw;
  let cid = (t.host * conn_id_stride) + t.next_conn in
  t.next_conn <- t.next_conn + 1;
  t.opened <- t.opened + 1;
  let progress = ref K.Gw_connecting in
  let c =
    {
      cid;
      app;
      gw;
      link;
      credits = 0;
      progress = Some progress;
      fin_sent = false;
      fin_rcvd = false;
      rst_sent = false;
    }
  in
  register t c;
  Link.send link
    ~now:(Sched.now t.k.K.sched)
    (Link.Syn
       {
         conn = cid;
         src_port = local_port;
         dst_port = port;
         window = app.Net.rcvbuf;
       });
  (app, progress)

let gw_poke t s =
  match Hashtbl.find_opt t.by_sid s.Net.sid with
  | Some c -> pump t c
  | None -> ()

let gw_drained t s n =
  if n > 0 then
    match Hashtbl.find_opt t.by_sid s.Net.sid with
    | Some c when not c.fin_sent ->
      Link.send c.link
        ~now:(Sched.now t.k.K.sched)
        (Link.Window { conn = c.cid; bytes = n })
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Inbound message application *)

(* Applies one drained link message. Must run as a scheduled event of this
   host at the message's delivery time [m.at] (the shard runner arranges
   that), so everything it does is ordinary in-timestamp-order simulation
   work. [src] is the sending host (for SYN replies; established
   connections carry their own outbound link). *)
let apply t ~src (m : Link.msg) =
  let k = t.k in
  let now = Sched.now k.K.sched in
  let reply payload =
    match Hashtbl.find_opt t.out src with
    | Some l -> Link.send l ~now payload
    | None -> ()
  in
  match m.Link.payload with
  | Link.Syn { conn; src_port; dst_port; window } -> (
    match Net.find_listener k.K.net ~port:dst_port with
    | None ->
      t.refused <- t.refused + 1;
      reply (Link.Syn_refused { conn })
    | Some l ->
      let gw, app =
        Net.make_pair k.K.net ~client_port:src_port ~server_port:dst_port
      in
      mark_remote app gw;
      if Net.try_enqueue l app then begin
        let c =
          {
            cid = conn;
            app;
            gw;
            link =
              (match Hashtbl.find_opt t.out src with
              | Some l -> l
              | None ->
                invalid_arg "Hostnet.apply: SYN from an unlinked host");
            credits = window;
            progress = None;
            fin_sent = false;
            fin_rcvd = false;
            rst_sent = false;
          }
        in
        register t c;
        t.opened <- t.opened + 1;
        reply (Link.Syn_ok { conn; window = app.Net.rcvbuf });
        Sched.kick k.K.sched
      end
      else begin
        (* backlog full at SYN arrival, like the local enqueue check *)
        t.refused <- t.refused + 1;
        Net.close_stream gw;
        Net.close_stream app;
        reply (Link.Syn_refused { conn })
      end)
  | Link.Syn_ok { conn; window } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.credits <- window;
      c.app.Net.connected <- true;
      (match c.progress with Some p -> p := K.Gw_connected | None -> ());
      pump t c;
      Sched.kick k.K.sched)
  | Link.Syn_refused { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      (match c.progress with Some p -> p := K.Gw_refused | None -> ());
      Net.close_stream c.gw;
      Net.close_stream c.app;
      unregister t c;
      Sched.kick k.K.sched)
  | Link.Data { conn; data } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> () (* both sides torn down already: late data is dropped *)
    | Some c ->
      if Net.peer_gone c.gw then begin
        (* the receiving application closed: a real stack answers
           data-after-close with RST *)
        if not c.rst_sent then begin
          c.rst_sent <- true;
          t.resets <- t.resets + 1;
          Link.send c.link ~now (Link.Rst { conn = c.cid })
        end
      end
      else begin
        Net.commit_inbound c.app data;
        Sched.kick k.K.sched
      end)
  | Link.Window { conn; bytes } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.credits <- c.credits + bytes;
      pump t c)
  | Link.Fin { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      c.fin_rcvd <- true;
      (* half-close: the application observes EOF once it has drained,
         but may keep writing (its own close/SHUT_WR sends our FIN) *)
      c.gw.Net.wr_shut <- true;
      pump t c;
      maybe_gc t c;
      Sched.kick k.K.sched)
  | Link.Rst { conn } -> (
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some c ->
      t.resets <- t.resets + 1;
      Net.close_stream c.gw;
      Net.close_stream c.app;
      unregister t c;
      Sched.kick k.K.sched)

(* ------------------------------------------------------------------ *)

let create ~host k =
  let t =
    {
      host;
      k;
      routes = Hashtbl.create 16;
      out = Hashtbl.create 8;
      conns = Hashtbl.create 32;
      by_sid = Hashtbl.create 64;
      next_conn = 0;
      opened = 0;
      refused = 0;
      resets = 0;
    }
  in
  k.K.gateway <-
    Some
      {
        K.gw_has_port = gw_has_port t;
        gw_connect = (fun ~local_port ~port -> gw_connect t ~local_port ~port);
        gw_poke = gw_poke t;
        gw_drained = gw_drained t;
      };
  t
