(** Discrete-event cooperative scheduler. Simulated threads are OCaml 5
    effect-handler coroutines; the kernel decides when (in virtual time)
    each one resumes. Blocked threads are parked with retry thunks that
    re-run on every {!kick}. *)

open Remon_sim

type _ Effect.t +=
  | Syscall_eff : Syscall.call -> Syscall.result Effect.t
  | Compute_eff : Vtime.t -> unit Effect.t
  | Now_eff : Vtime.t Effect.t
  | Self_eff : Proc.thread Effect.t
  | Wait_user_eff : (unit -> bool) -> unit Effect.t
        (** user-space busy-wait on a memory condition (no syscall) *)

exception Thread_killed

type t = {
  events : (unit -> unit) Event_queue.t;
  slot : (unit -> unit) Event_queue.slot;  (** run-loop landing pad *)
  mutable now : Vtime.t;
  mutable syscall_handler :
    Proc.thread -> Syscall.call -> return:(Syscall.result -> unit) -> unit;
  mutable on_thread_exit : Proc.thread -> unit;
  mutable blocked : Proc.thread list;
  mutable kick_scheduled : bool;
  mutable kick_thunk : unit -> unit;  (** preallocated retry sweep *)
  mutable events_processed : int;
  mutable max_events : int;
}

val create : unit -> t
val now : t -> Vtime.t

val schedule_at : t -> time:Vtime.t -> (unit -> unit) -> Event_queue.handle
(** Times in the past are clamped to [now]. *)

val schedule : t -> time:Vtime.t -> (unit -> unit) -> unit

val schedule_pre : t -> time:Vtime.t -> (unit -> unit) -> unit
(** Like [schedule] but lands in the event queue's pre-lane: at a time tie
    the thunk runs before every normally scheduled event, independent of
    insertion round. Used for cross-host message delivery. *)

val park : t -> Proc.thread -> what:string -> retry:(unit -> bool) -> Proc.blocked
(** Park a thread; its [retry] runs on every kick and returns true once the
    thread has rescheduled itself. *)

val kick : t -> unit
(** Schedule a retry sweep over all parked threads (coalesced). *)

val unpark : t -> Proc.thread -> unit
val blocked_threads : t -> Proc.thread list
val spawn : t -> Proc.thread -> (unit -> unit) -> unit

exception Event_budget_exhausted

val run : ?until:Vtime.t -> t -> unit
(** Drains the event queue; with [~until] only events with [time <= until]
    run and later ones stay queued (a bounded run no longer discards the
    first event past the limit). *)

val run_before : t -> bound:Vtime.t -> unit
(** Processes every event with [time < bound] (strict) and leaves the rest
    queued: one conservative-parallel shard window. *)

val next_event_time : t -> Vtime.t
(** Time of the earliest queued event, or [Vtime.infinity] when idle — the
    local component of the shard synchronizer's lookahead fixed point. *)

(** {1 Effect-performing API for program bodies} *)

val syscall : Syscall.call -> Syscall.result
val compute : Vtime.t -> unit
val vnow : unit -> Vtime.t
val self : unit -> Proc.thread

val wait_user : (unit -> bool) -> unit
(** Blocks until the condition holds; models user-space spinning on shared
    memory (used by the record/replay agent and thread joins). *)
