(** Process and thread control blocks, file descriptors, and the
    ptrace-style tracer interface. These types are shared by the scheduler,
    the syscall dispatcher and the MVEE monitors, and are therefore fully
    transparent. *)

open Remon_sim
open Remon_util

module IntSet : Set.S with type elt = int

(* ------------------------------------------------------------------ *)
(* File descriptors *)

type timerfd_state = {
  mutable spec : Syscall.itimer_spec option;
  mutable armed_at : Vtime.t;
  mutable expirations : int; (* unread expiration count *)
}

type eventfd_state = { mutable count : int }

type desc_kind =
  | Regular of Vfs.node
  | Directory of Vfs.node
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Listener of Net.listener
  | Stream of Net.stream
  | Epoll_fd of Epoll.t
  | Timer_fd of timerfd_state
  | Event_fd of eventfd_state
  | Dev_null
  | Proc_maps of { mutable content : string }
      (* snapshot of /proc/self/maps taken at open time *)
  | Replicated_handle of int
      (* slave-side stub installed by the MVEE: the fd number exists so
         that fd allocation stays in lockstep across replicas, but all I/O
         on it is satisfied by replicated master results. The int is the
         master's matching fd number. *)

type desc = {
  mutable kind : desc_kind;
  mutable offset : int;
  mutable nonblock : bool;
  mutable cloexec : bool;
  mutable refs : int; (* fd-table entries sharing this description (dup) *)
  can_read : bool;
  can_write : bool;
  append : bool;
  path : string option; (* for path-opened descriptors *)
}

(* ------------------------------------------------------------------ *)
(* ptrace *)

type stop_reason =
  | Syscall_entry_stop of Syscall.call
  | Syscall_exit_stop of Syscall.call * Syscall.result
  | Signal_delivery_stop of int
  | Exit_stop of int

type resume_action =
  | Resume_continue (* proceed; execute the (possibly rewritten) call *)
  | Resume_rewrite of Syscall.call (* entry stop: replace the call, then execute *)
  | Resume_skip of Syscall.result (* entry stop: do not execute; inject result *)
  | Resume_set_result of Syscall.result (* exit stop: overwrite the result *)
  | Resume_deliver (* signal stop: let the signal be delivered now *)
  | Resume_suppress (* signal stop: tracer keeps the signal for later *)
  | Resume_kill (* terminate the whole process group under trace *)

(* ------------------------------------------------------------------ *)
(* Threads and processes *)

type thread_state =
  | Ready (* a scheduled event will run or resume it *)
  | Blocked of blocked
  | Trace_stopped of { reason : stop_reason; resume : resume_action -> unit }
  | Dead

and blocked = {
  mutable retry : unit -> bool;
      (* re-attempt the pending operation; true = unblocked (the retry has
         scheduled the thread's resumption itself) *)
  mutable timeout : Event_queue.handle option;
  mutable interrupt : (Syscall.result -> unit) option;
      (* forcibly complete the blocked call with the given result; used by
         signal delivery (EINTR) and by GHUMVEE when it aborts a blocked
         master call (Section 3.8) *)
  blocked_since : Vtime.t;
  what : string; (* human-readable reason, for deadlock reports *)
}

type process = {
  pid : int;
  mutable parent_pid : int;
  mutable name : string;
  fds : (int, desc) Hashtbl.t;
  vm : Vm.t;
  mutable cwd : string;
  sig_actions : (int, Syscall.sig_action) Hashtbl.t;
  mutable sig_mask : IntSet.t;
  pending_signals : int Queue.t;
  threads : thread Vec.t; (* in spawn order *)
  mutable next_tid_rank : int;
  mutable alive : bool;
  mutable reaped : bool; (* consumed by a wait4 *)
  mutable exit_code : int;
  mutable tracer : tracer option;
  mutable entry_table : (unit -> unit) array;
      (* thread entry points for Clone; index = logical function identity *)
  mutable ipmon_registered : ipmon_registration option;
  mutable alarm_deadline : Vtime.t option;
  mutable itimer : Syscall.itimer_spec option;
  mutable itimer_next : Vtime.t option;
  mutable replica_info : replica_info option;
      (* set by the MVEE when this process is a managed replica *)
  mutable exit_waiters : (int -> unit) list;
      (* parents blocked in wait4, monitors awaiting death *)
}

and thread = {
  tid : int;
  proc : process;
  rank : int; (* index within process, identical across replicas *)
  mutable clock : Vtime.t; (* local virtual time *)
  mutable tstate : thread_state;
  mutable syscall_index : int; (* entries so far: rendezvous identity *)
  mutable current_call : Syscall.call option;
  pending_delivery : int Queue.t; (* signals to run handlers for, set at syscall return *)
  mutable in_ipmon : bool; (* executing inside IP-MON's entry point *)
  mutable last_result : Syscall.result option;
  (* Preallocated resume scratch, managed by [Sched]. A coroutine thread
     has at most one pending suspension at any instant, so the captured
     continuation and its resume value live here instead of inside
     per-event closures; [resume_thunk] and [return_fn] are allocated once
     at spawn. [resume_kind]: 0 idle, -1 suspended awaiting the syscall
     return, 1 syscall result ready, 2 unit resume ready. *)
  mutable resume_kind : int;
  mutable resume_k : Obj.t;
  mutable resume_r : Syscall.result;
  mutable resume_thunk : unit -> unit;
  mutable return_fn : Syscall.result -> unit;
  mutable finish_fn : Syscall.result -> unit;
      (* dispatch completion with [return_fn] as the continuation; installed
         by the dispatcher on the thread's first syscall so the tracing-off
         path needs no per-call closure *)
  mutable ipmon_finish_fn : Syscall.result -> unit;
      (* same, for calls returning from IP-MON (clears [in_ipmon]) *)
}

and tracer = {
  tracer_name : string;
  mutable on_stop : thread -> stop_reason -> unit;
      (* invoked when a traced thread stops; the thread stays
         [Trace_stopped] until its [resume] closure is called *)
}

and ipmon_registration = {
  unmonitored : Sysno.Set.t; (* the set IP-MON offered (possibly trimmed by GHUMVEE) *)
  rb_addr : int64; (* where the RB is mapped in this replica *)
  entry_addr : int64; (* IP-MON's syscall entry point *)
  invoke :
    thread -> token:int64 -> call:Syscall.call -> return:(Syscall.result -> unit) -> unit;
      (* the IP-MON code itself, installed by the MVEE at registration *)
}

and replica_info = {
  variant_index : int; (* 0 = master *)
  group_id : int; (* identifies the replica set this process belongs to *)
}

val fn_unset : Syscall.result -> unit
(** Sentinel for [finish_fn]/[ipmon_finish_fn]: physical identity marks "not
    yet installed"; calling it fails. *)

val is_master : process -> bool
(** Is this the replica set's variant 0? *)

val thread_name : thread -> string

val find_thread_by_rank : process -> int -> thread option

val alloc_fd : process -> int
(** Lowest free descriptor number, like Linux. *)

val desc_of_fd : process -> int -> desc option

val make_desc :
  ?nonblock:bool ->
  ?can_read:bool ->
  ?can_write:bool ->
  ?append:bool ->
  ?path:string ->
  desc_kind ->
  desc

(** File-map classification byte (Section 3.6 of the paper). *)
type fd_class = Fd_regular | Fd_pipe | Fd_socket | Fd_pollfd | Fd_special

val classify_desc : desc -> fd_class
val fd_class_to_string : fd_class -> string
