(* Kernel state: every subsystem instance plus the hook points the MVEE
   layers attach to (the IK-B broker and ptrace tracers). *)

open Remon_sim
open Remon_util

type counters = {
  mutable syscalls : int;
  mutable traps : int;
  mutable ptrace_stops : int;
  mutable ipmon_fastpath : int; (* calls completed through IP-MON *)
  mutable monitored : int; (* calls that took the ptrace path *)
  mutable plain : int; (* untraced, unbrokered executions *)
  mutable context_switches : int;
  mutable bytes_copied_xproc : int;
  mutable rb_bytes : int;
  mutable futex_waits : int;
  mutable futex_wakes : int;
  mutable signals_posted : int;
  mutable signals_delivered : int;
  mutable tokens_granted : int;
  mutable tokens_rejected : int;
  by_sysno : int array; (* per-syscall tallies, indexed by [Sysno.index] *)
}

let make_counters () =
  {
    syscalls = 0;
    traps = 0;
    ptrace_stops = 0;
    ipmon_fastpath = 0;
    monitored = 0;
    plain = 0;
    context_switches = 0;
    bytes_copied_xproc = 0;
    rb_bytes = 0;
    futex_waits = 0;
    futex_wakes = 0;
    signals_posted = 0;
    signals_delivered = 0;
    tokens_granted = 0;
    tokens_rejected = 0;
    by_sysno = Array.make Sysno.slots 0;
  }

let count_sysno c no =
  let i = Sysno.index no in
  c.by_sysno.(i) <- c.by_sysno.(i) + 1

(* Routing decision taken by the IK-B broker at syscall entry (Figure 2). *)
type route =
  | Route_plain (* no broker/tracer interest: execute directly *)
  | Route_ipmon of int64 (* forward to IP-MON with this one-time token *)
  | Route_monitor (* report to the CP monitor via ptrace *)

type broker = {
  broker_name : string;
  classify : Proc.thread -> Syscall.call -> route;
      (* IK-B interceptor: called once per syscall entry *)
  verify : Proc.thread -> token:int64 -> call:Syscall.call -> bool;
      (* IK-B verifier: may the forwarded call complete? One-time. *)
}

(* Fault-injection decision, consulted once per syscall entry before broker
   routing. Installed by the MVEE's fault layer; the kernel stays agnostic
   of fault *plans* and only knows how to apply a decision, so the monitors
   observe injected failures through their normal detection paths. *)
type fault_decision =
  | Fault_none
  | Fault_crash of int (* kill the process as if a fatal signal hit mid-call *)
  | Fault_rewrite of Syscall.call (* corrupted argument capture *)
  | Fault_delay of Vtime.t (* stall this arrival before routing it *)
  | Fault_result of Syscall.result (* complete immediately (transient errors) *)

(* Cross-host gateway, installed by the sharded-run host-network layer.
   In a sharded (PDES) simulation each host runs its own kernel; a connect
   to a port no local listener owns is handed to the gateway, which speaks
   a SYN/DATA/WINDOW/FIN protocol over typed inter-host links. The hooks
   live here as a closure record so the dispatcher needs no dependency on
   the gateway implementation; a [None] gateway (every single-host run)
   keeps the historical behavior: unknown ports get ECONNREFUSED. *)

type gw_progress =
  | Gw_connecting
  | Gw_connected
  | Gw_refused (* no remote listener / backlog full *)

type gateway = {
  gw_has_port : int -> bool;
      (* is this port statically routed to another host? *)
  gw_connect : local_port:int -> port:int -> Net.stream * gw_progress ref;
      (* build the local endpoint pair, send the SYN; the dispatcher polls
         the returned progress cell (blocking connect) or relies on
         [connected]/[peer_gone] (nonblocking + poll) *)
  gw_poke : Net.stream -> unit;
      (* state of a gateway-tracked stream changed (data committed, write
         side shut, endpoint closed): pump buffered bytes onto the link
         and emit FIN when flushed *)
  gw_drained : Net.stream -> int -> unit;
      (* the application consumed [n] bytes from a remote stream: the
         gateway returns the credit with a WINDOW update *)
}

(* Futex wait queues, keyed by physical backing (shared segments give the
   same key in every attached process). *)
type futex_waiter = {
  ft : Proc.thread;
  mutable woken : bool;
  mutable cancelled : bool; (* timed out or killed; wake skips it *)
}

type t = {
  sched : Sched.t;
  cost : Cost_model.t;
  vfs : Vfs.t;
  net : Net.t;
  shm : Shm.t;
  rng : Rng.t;
  procs : (int, Proc.process) Hashtbl.t;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable next_share_group : int;
  futexes : (Vm.futex_key, futex_waiter Queue.t) Hashtbl.t;
  stats : counters;
  mutable broker : broker option;
  mutable fault_hook : (Proc.thread -> Syscall.call -> fault_decision) option;
  (* Per-group hook registries, keyed by [Proc.replica_info.group_id]: one
     kernel can host several replica sets (a fleet), each with its own
     broker and fault plan. The single-slot [broker]/[fault_hook] fields
     above remain as a kernel-wide fallback for threads outside any group. *)
  brokers : (int, broker) Hashtbl.t;
  fault_hooks : (int, Proc.thread -> Syscall.call -> fault_decision) Hashtbl.t;
  flocks : (int, int) Hashtbl.t;
      (* advisory exclusive file locks: inode -> holder pid *)
  pending_ipmon : (int, Proc.ipmon_registration) Hashtbl.t;
      (* pid -> registration prepared by the MVEE before the replica issues
         ipmon_register (the closure cannot travel through the syscall) *)
  epoch_offset_ns : int64; (* "wall clock" base for gettimeofday *)
  mutable log : (Vtime.t * string) list; (* recent diagnostic events, reversed *)
  mutable log_enabled : bool;
  mutable obs : Remon_obs.Obs.t option;
      (* structured trace/metrics sink; None = observability fully off *)
  mutable gateway : gateway option;
      (* cross-host network gateway; None outside sharded runs *)
}

let create ?(cost = Cost_model.default) ?(seed = 42)
    ?(net_latency = Vtime.us 50) ?(sock_buf = Net.default_bufcap) () =
  {
    sched = Sched.create ();
    cost;
    vfs = Vfs.create ();
    net = Net.create ~latency:net_latency ~bufcap:sock_buf ();
    shm = Shm.create ();
    rng = Rng.make seed;
    procs = Hashtbl.create 8;
    next_pid = 1000;
    next_tid = 5000;
    next_share_group = 1;
    futexes = Hashtbl.create 32;
    stats = make_counters ();
    broker = None;
    fault_hook = None;
    brokers = Hashtbl.create 4;
    fault_hooks = Hashtbl.create 4;
    flocks = Hashtbl.create 8;
    pending_ipmon = Hashtbl.create 8;
    epoch_offset_ns = 1_600_000_000_000_000_000L;
    log = [];
    log_enabled = false;
    obs = None;
    gateway = None;
  }

let now k = Sched.now k.sched

(* Gateway hook dispatch: call sites guard on [stream.Net.remote] so the
   single-host hot path pays nothing. *)
let gw_poke k s = match k.gateway with Some g -> g.gw_poke s | None -> ()

let gw_drained k s n =
  match k.gateway with Some g -> g.gw_drained s n | None -> ()

(* Resolve the broker / fault hook a thread is subject to: its group's
   registered hook when it belongs to a replica set, else the kernel-wide
   single slot. *)
let broker_for k (th : Proc.thread) =
  match th.proc.Proc.replica_info with
  | Some { Proc.group_id; _ } -> (
    match Hashtbl.find_opt k.brokers group_id with
    | Some _ as b -> b
    | None -> k.broker)
  | None -> k.broker

let fault_hook_for k (th : Proc.thread) =
  match th.proc.Proc.replica_info with
  | Some { Proc.group_id; _ } -> (
    match Hashtbl.find_opt k.fault_hooks group_id with
    | Some _ as f -> f
    | None -> k.fault_hook)
  | None -> k.fault_hook

let logf k fmt =
  Printf.ksprintf
    (fun s -> if k.log_enabled then k.log <- (now k, s) :: k.log)
    fmt

let charge (th : Proc.thread) ns =
  th.clock <- Vtime.add th.clock (Vtime.ns (max 0 ns))

let fresh_pid k =
  let pid = k.next_pid in
  k.next_pid <- k.next_pid + 1;
  pid

let fresh_tid k =
  let tid = k.next_tid in
  k.next_tid <- k.next_tid + 1;
  tid

let fresh_share_group k =
  let g = k.next_share_group in
  k.next_share_group <- k.next_share_group + 1;
  g

let futex_queue k key =
  match Hashtbl.find_opt k.futexes key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace k.futexes key q;
    q

let find_proc k pid = Hashtbl.find_opt k.procs pid
