(* Symbolic system-call numbers.

   One constructor per supported call; the monitoring policy (Table 1 of the
   paper) and all per-call statistics key off this type rather than raw
   integers so the compiler checks exhaustiveness of the classification. *)

type t =
  (* -- process / identity / time queries: BASE_LEVEL unconditional -- *)
  | Gettimeofday
  | Clock_gettime
  | Time
  | Getpid
  | Gettid
  | Getpgrp
  | Getppid
  | Getgid
  | Getegid
  | Getuid
  | Geteuid
  | Getcwd
  | Getpriority
  | Getrusage
  | Times
  | Capget
  | Getitimer
  | Sysinfo
  | Uname
  | Sched_yield
  | Nanosleep
  | Getpgid
  | Getsid
  | Getrlimit
  | Sched_getaffinity
  | Clock_getres
  | Getrandom
  (* -- BASE_LEVEL conditional -- *)
  | Futex
  | Ioctl
  | Fcntl
  (* -- NONSOCKET_RO_LEVEL unconditional -- *)
  | Access
  | Faccessat
  | Lseek
  | Stat
  | Lstat
  | Fstat
  | Fstatat
  | Getdents
  | Readlink
  | Readlinkat
  | Getxattr
  | Lgetxattr
  | Fgetxattr
  | Alarm
  | Setitimer
  | Timerfd_gettime
  | Madvise
  | Fadvise64
  | Statfs
  | Fstatfs
  | Getdents64
  | Readahead
  | Mincore
  (* -- read family: NONSOCKET_RO (non-socket fds) / SOCKET_RO (sockets) -- *)
  | Read
  | Readv
  | Pread64
  | Preadv
  | Select
  | Poll
  | Pselect6
  | Ppoll
  (* -- NONSOCKET_RW_LEVEL unconditional -- *)
  | Sync
  | Syncfs
  | Fsync
  | Fdatasync
  | Timerfd_settime
  | Msync
  | Flock
  | Chmod
  | Fchmod
  | Chown
  | Utimensat
  (* -- write family: NONSOCKET_RW (non-socket fds) / SOCKET_RW (sockets) -- *)
  | Write
  | Writev
  | Pwrite64
  | Pwritev
  (* -- SOCKET_RO_LEVEL -- *)
  | Epoll_wait
  | Recvfrom
  | Recvmsg
  | Recvmmsg
  | Getsockname
  | Getpeername
  | Getsockopt
  (* -- SOCKET_RW_LEVEL -- *)
  | Sendto
  | Sendmsg
  | Sendmmsg
  | Sendfile
  | Epoll_ctl
  | Setsockopt
  | Shutdown
  (* -- always monitored: file-descriptor lifecycle -- *)
  | Open
  | Openat
  | Creat
  | Close
  | Dup
  | Dup2
  | Dup3
  | Pipe2
  | Eventfd
  | Pipe
  | Socket
  | Socketpair
  | Bind
  | Listen
  | Accept
  | Accept4
  | Connect
  | Epoll_create
  | Timerfd_create
  | Unlink
  | Rename
  | Mkdir
  | Rmdir
  | Truncate
  | Ftruncate
  | Mkdirat
  | Unlinkat
  | Renameat
  | Link
  | Linkat
  | Symlink
  | Symlinkat
  | Umask
  (* -- always monitored: memory management -- *)
  | Mmap
  | Munmap
  | Mprotect
  | Mremap
  | Brk
  | Mlock
  | Munlock
  (* -- always monitored: process / thread lifecycle -- *)
  | Clone
  | Fork
  | Execve
  | Exit
  | Exit_group
  | Wait4
  | Kill
  | Tgkill
  | Setrlimit
  | Prlimit64
  | Sched_setaffinity
  | Setsid
  (* -- always monitored: signal handling -- *)
  | Rt_sigaction
  | Rt_sigprocmask
  | Rt_sigreturn
  | Sigaltstack
  | Pause
  (* -- always monitored: System V shared memory -- *)
  | Shmget
  | Shmat
  | Shmdt
  | Shmctl
  (* -- ReMon's added registration call (Section 3.5) -- *)
  | Ipmon_register

let to_string = function
  | Gettimeofday -> "gettimeofday"
  | Clock_gettime -> "clock_gettime"
  | Time -> "time"
  | Getpid -> "getpid"
  | Gettid -> "gettid"
  | Getpgrp -> "getpgrp"
  | Getppid -> "getppid"
  | Getgid -> "getgid"
  | Getegid -> "getegid"
  | Getuid -> "getuid"
  | Geteuid -> "geteuid"
  | Getcwd -> "getcwd"
  | Getpriority -> "getpriority"
  | Getrusage -> "getrusage"
  | Times -> "times"
  | Capget -> "capget"
  | Getitimer -> "getitimer"
  | Sysinfo -> "sysinfo"
  | Uname -> "uname"
  | Sched_yield -> "sched_yield"
  | Nanosleep -> "nanosleep"
  | Futex -> "futex"
  | Ioctl -> "ioctl"
  | Fcntl -> "fcntl"
  | Access -> "access"
  | Faccessat -> "faccessat"
  | Lseek -> "lseek"
  | Stat -> "stat"
  | Lstat -> "lstat"
  | Fstat -> "fstat"
  | Fstatat -> "fstatat"
  | Getdents -> "getdents"
  | Readlink -> "readlink"
  | Readlinkat -> "readlinkat"
  | Getxattr -> "getxattr"
  | Lgetxattr -> "lgetxattr"
  | Fgetxattr -> "fgetxattr"
  | Alarm -> "alarm"
  | Setitimer -> "setitimer"
  | Timerfd_gettime -> "timerfd_gettime"
  | Madvise -> "madvise"
  | Fadvise64 -> "fadvise64"
  | Read -> "read"
  | Readv -> "readv"
  | Pread64 -> "pread64"
  | Preadv -> "preadv"
  | Select -> "select"
  | Poll -> "poll"
  | Sync -> "sync"
  | Syncfs -> "syncfs"
  | Fsync -> "fsync"
  | Fdatasync -> "fdatasync"
  | Timerfd_settime -> "timerfd_settime"
  | Write -> "write"
  | Writev -> "writev"
  | Pwrite64 -> "pwrite64"
  | Pwritev -> "pwritev"
  | Epoll_wait -> "epoll_wait"
  | Recvfrom -> "recvfrom"
  | Recvmsg -> "recvmsg"
  | Recvmmsg -> "recvmmsg"
  | Getsockname -> "getsockname"
  | Getpeername -> "getpeername"
  | Getsockopt -> "getsockopt"
  | Sendto -> "sendto"
  | Sendmsg -> "sendmsg"
  | Sendmmsg -> "sendmmsg"
  | Sendfile -> "sendfile"
  | Epoll_ctl -> "epoll_ctl"
  | Setsockopt -> "setsockopt"
  | Shutdown -> "shutdown"
  | Open -> "open"
  | Openat -> "openat"
  | Creat -> "creat"
  | Close -> "close"
  | Dup -> "dup"
  | Dup2 -> "dup2"
  | Pipe -> "pipe"
  | Socket -> "socket"
  | Socketpair -> "socketpair"
  | Bind -> "bind"
  | Listen -> "listen"
  | Accept -> "accept"
  | Accept4 -> "accept4"
  | Connect -> "connect"
  | Epoll_create -> "epoll_create"
  | Timerfd_create -> "timerfd_create"
  | Unlink -> "unlink"
  | Rename -> "rename"
  | Mkdir -> "mkdir"
  | Rmdir -> "rmdir"
  | Truncate -> "truncate"
  | Ftruncate -> "ftruncate"
  | Mmap -> "mmap"
  | Munmap -> "munmap"
  | Mprotect -> "mprotect"
  | Mremap -> "mremap"
  | Brk -> "brk"
  | Clone -> "clone"
  | Fork -> "fork"
  | Execve -> "execve"
  | Exit -> "exit"
  | Exit_group -> "exit_group"
  | Wait4 -> "wait4"
  | Kill -> "kill"
  | Tgkill -> "tgkill"
  | Rt_sigaction -> "rt_sigaction"
  | Rt_sigprocmask -> "rt_sigprocmask"
  | Rt_sigreturn -> "rt_sigreturn"
  | Sigaltstack -> "sigaltstack"
  | Pause -> "pause"
  | Shmget -> "shmget"
  | Shmat -> "shmat"
  | Shmdt -> "shmdt"
  | Shmctl -> "shmctl"
  | Ipmon_register -> "ipmon_register"
  | Getpgid -> "getpgid"
  | Getsid -> "getsid"
  | Getrlimit -> "getrlimit"
  | Sched_getaffinity -> "sched_getaffinity"
  | Clock_getres -> "clock_getres"
  | Getrandom -> "getrandom"
  | Statfs -> "statfs"
  | Fstatfs -> "fstatfs"
  | Getdents64 -> "getdents64"
  | Readahead -> "readahead"
  | Mincore -> "mincore"
  | Pselect6 -> "pselect6"
  | Ppoll -> "ppoll"
  | Msync -> "msync"
  | Flock -> "flock"
  | Chmod -> "chmod"
  | Fchmod -> "fchmod"
  | Chown -> "chown"
  | Utimensat -> "utimensat"
  | Dup3 -> "dup3"
  | Pipe2 -> "pipe2"
  | Eventfd -> "eventfd"
  | Mkdirat -> "mkdirat"
  | Unlinkat -> "unlinkat"
  | Renameat -> "renameat"
  | Link -> "link"
  | Linkat -> "linkat"
  | Symlink -> "symlink"
  | Symlinkat -> "symlinkat"
  | Umask -> "umask"
  | Mlock -> "mlock"
  | Munlock -> "munlock"
  | Setrlimit -> "setrlimit"
  | Prlimit64 -> "prlimit64"
  | Sched_setaffinity -> "sched_setaffinity"
  | Setsid -> "setsid"

let all =
  [
    Gettimeofday; Clock_gettime; Time; Getpid; Gettid; Getpgrp; Getppid;
    Getgid; Getegid; Getuid; Geteuid; Getcwd; Getpriority; Getrusage; Times;
    Capget; Getitimer; Sysinfo; Uname; Sched_yield; Nanosleep; Futex; Ioctl;
    Fcntl; Access; Faccessat; Lseek; Stat; Lstat; Fstat; Fstatat; Getdents;
    Readlink; Readlinkat; Getxattr; Lgetxattr; Fgetxattr; Alarm; Setitimer;
    Timerfd_gettime; Madvise; Fadvise64; Read; Readv; Pread64; Preadv; Select;
    Poll; Sync; Syncfs; Fsync; Fdatasync; Timerfd_settime; Write; Writev;
    Pwrite64; Pwritev; Epoll_wait; Recvfrom; Recvmsg; Recvmmsg; Getsockname;
    Getpeername; Getsockopt; Sendto; Sendmsg; Sendmmsg; Sendfile; Epoll_ctl;
    Setsockopt; Shutdown; Open; Openat; Creat; Close; Dup; Dup2; Pipe; Socket;
    Socketpair; Bind; Listen; Accept; Accept4; Connect; Epoll_create;
    Timerfd_create; Unlink; Rename; Mkdir; Rmdir; Truncate; Ftruncate; Mmap;
    Munmap; Mprotect; Mremap; Brk; Clone; Fork; Execve; Exit; Exit_group;
    Wait4; Kill; Tgkill; Rt_sigaction; Rt_sigprocmask; Rt_sigreturn;
    Sigaltstack; Pause; Shmget; Shmat; Shmdt; Shmctl; Ipmon_register;
    Getpgid; Getsid; Getrlimit; Sched_getaffinity; Clock_getres; Getrandom;
    Statfs; Fstatfs; Getdents64; Readahead; Mincore; Pselect6; Ppoll; Msync;
    Flock; Chmod; Fchmod; Chown; Utimensat; Dup3; Pipe2; Eventfd; Mkdirat;
    Unlinkat; Renameat; Link; Linkat; Symlink; Symlinkat; Umask; Mlock;
    Munlock; Setrlimit; Prlimit64; Sched_setaffinity; Setsid;
  ]

let compare = Stdlib.compare
let equal = Stdlib.( = )
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* All constructors are constant, so values are small consecutive integers;
   [index] exposes that for dense per-syscall counter arrays. *)
external index : t -> int = "%identity"

let slots = 256 (* > number of constructors; sizes index-keyed arrays *)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
