(** In-memory filesystem: a tree of inodes with regular files, directories,
    symlinks and special (generated-content) nodes. Shared by every process
    of a kernel instance — MVEE transparency means only the master replica
    may mutate it. *)

type filebuf = { mutable bytes : Bytes.t; mutable size : int }
(** Regular-file backing store: growable byte array with explicit size;
    appends are amortized O(1). *)

type node = {
  ino : int;
  mutable kind : kind;
  mutable mtime_ns : int;
  mutable xattrs : (string * string) list;
}

and kind =
  | Reg of filebuf
  | Dir of (string, node) Hashtbl.t
  | Symlink of string
  | Special of (unit -> string) (** content generated on open (/proc) *)

type t

val create : unit -> t

val resolve : t -> string -> (node, Errno.t) result
(** Follows symlinks (bounded depth; ELOOP beyond 16). *)

val resolve_nofollow : t -> string -> (node, Errno.t) result
(** Does not follow a symlink in the final component. *)

val exists : t -> string -> bool
val mkdir : t -> string -> (node, Errno.t) result
val mkdir_p : t -> string -> (node, Errno.t) result
val create_file : t -> string -> (node, Errno.t) result
val add_special : t -> string -> (unit -> string) -> (node, Errno.t) result
val symlink : t -> target:string -> path:string -> (node, Errno.t) result
val unlink : t -> string -> (unit, Errno.t) result
val rmdir : t -> string -> (unit, Errno.t) result
val rename : t -> src:string -> dst:string -> (unit, Errno.t) result
val list_dir : node -> (string list, Errno.t) result
val file_size : node -> int
val stat_kind : node -> [ `Reg | `Dir | `Fifo | `Sock | `Special ]
val read_at : node -> offset:int -> count:int -> (string, Errno.t) result
val write_at : node -> offset:int -> data:string -> now_ns:int -> (int, Errno.t) result
val truncate : node -> size:int -> now_ns:int -> (unit, Errno.t) result

val parent_and_name : t -> string -> (node * string, Errno.t) result
(** The directory containing [path]'s final component, plus that name. *)
