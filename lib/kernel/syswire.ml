(* Binary wire codec for syscall values (recordings, reproducer files).

   Varint-based (LEB128, zigzag for signed fields). Each [Syscall.call]
   constructor is tagged with its dense [Sysno.index], so the tag space is
   stable as long as the syscall table is append-only; results and errnos
   carry their own small tag spaces. Decoding is fully bounds-checked and
   total: malformed input raises [Fail] with a typed [error] — never an
   out-of-bounds read, an unbounded allocation, or an escaping generic
   exception. That is the deliberate contrast with [Marshal], which is
   none of those things on corrupted bytes. *)

type error = Truncated | Corrupt of string

let error_to_string = function
  | Truncated -> "truncated input"
  | Corrupt msg -> "corrupt input: " ^ msg

exception Fail of error

let fail e = raise (Fail e)
let corrupt msg = fail (Corrupt msg)

(* ------------------------------------------------------------------ *)
(* Writer *)

module W = struct
  type t = { buf : Buffer.t }

  let create ?(initial = 256) () = { buf = Buffer.create initial }
  let u8 t n = Buffer.add_char t.buf (Char.chr (n land 0xff))

  (* LEB128 on a non-negative native int. *)
  let uint t n =
    if n < 0 then invalid_arg "Syswire.W.uint: negative";
    let rec go n =
      if n < 0x80 then Buffer.add_char t.buf (Char.chr n)
      else begin
        Buffer.add_char t.buf (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  (* Zigzag + LEB128 over the full 64-bit range. *)
  let i64 t v =
    let zz = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63) in
    let rec go zz =
      if Int64.equal (Int64.logand zz (Int64.lognot 0x7fL)) 0L then
        Buffer.add_char t.buf (Char.chr (Int64.to_int zz land 0x7f))
      else begin
        Buffer.add_char t.buf (Char.chr (0x80 lor (Int64.to_int zz land 0x7f)));
        go (Int64.shift_right_logical zz 7)
      end
    in
    go zz

  let int t n = i64 t (Int64.of_int n)
  let bool t b = u8 t (if b then 1 else 0)

  let str t s =
    uint t (String.length s);
    Buffer.add_string t.buf s

  let length t = Buffer.length t.buf
  let contents t = Buffer.contents t.buf
end

(* ------------------------------------------------------------------ *)
(* Reader *)

module R = struct
  type t = { data : string; mutable pos : int; limit : int }

  let of_string ?(pos = 0) ?len s =
    let limit = match len with Some l -> pos + l | None -> String.length s in
    if pos < 0 || limit > String.length s || pos > limit then
      invalid_arg "Syswire.R.of_string: bad slice";
    { data = s; pos; limit }

  let pos t = t.pos
  let remaining t = t.limit - t.pos

  let u8 t =
    if t.pos >= t.limit then fail Truncated;
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let uint t =
    let rec go shift acc =
      if shift > 62 then corrupt "overlong varint"
      else begin
        let b = u8 t in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b < 0x80 then acc else go (shift + 7) acc
      end
    in
    let n = go 0 0 in
    if n < 0 then corrupt "varint out of range";
    n

  let i64 t =
    let rec go shift acc =
      if shift > 63 then corrupt "overlong varint"
      else begin
        let b = u8 t in
        let acc =
          Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift)
        in
        if b < 0x80 then acc else go (shift + 7) acc
      end
    in
    let zz = go 0 0L in
    Int64.logxor
      (Int64.shift_right_logical zz 1)
      (Int64.neg (Int64.logand zz 1L))

  let int t =
    let v = i64 t in
    let n = Int64.to_int v in
    if not (Int64.equal (Int64.of_int n) v) then corrupt "int out of range";
    n

  let bool t =
    match u8 t with 0 -> false | 1 -> true | _ -> corrupt "bad bool"

  let str t =
    let n = uint t in
    if n > remaining t then fail Truncated;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s
end

(* ------------------------------------------------------------------ *)
(* Small-field helpers *)

let w_opt_int w = function
  | None -> W.bool w false
  | Some n ->
    W.bool w true;
    W.int w n

let r_opt_int r = if R.bool r then Some (R.int r) else None

let w_list w f l =
  W.uint w (List.length l);
  List.iter (fun x -> f w x) l

(* Each element costs at least one byte, so a length exceeding the bytes
   left is provably truncated — checked before any allocation. *)
let r_list r f =
  let n = R.uint r in
  if n > R.remaining r then fail Truncated;
  let rec go acc i = if i = 0 then List.rev acc else go (f r :: acc) (i - 1) in
  go [] n

let w_events w (e : Syscall.poll_events) =
  W.u8 w
    ((if e.Syscall.pollin then 1 else 0)
    lor (if e.Syscall.pollout then 2 else 0)
    lor (if e.Syscall.pollhup then 4 else 0)
    lor if e.Syscall.pollerr then 8 else 0)

let r_events r =
  let b = R.u8 r in
  if b > 15 then corrupt "bad poll events";
  {
    Syscall.pollin = b land 1 <> 0;
    pollout = b land 2 <> 0;
    pollhup = b land 4 <> 0;
    pollerr = b land 8 <> 0;
  }

let w_open_flags w (f : Syscall.open_flags) =
  W.u8 w
    ((if f.Syscall.read then 1 else 0)
    lor (if f.Syscall.write then 2 else 0)
    lor (if f.Syscall.create then 4 else 0)
    lor (if f.Syscall.trunc then 8 else 0)
    lor (if f.Syscall.append then 16 else 0)
    lor if f.Syscall.nonblock then 32 else 0)

let r_open_flags r =
  let b = R.u8 r in
  if b > 63 then corrupt "bad open flags";
  {
    Syscall.read = b land 1 <> 0;
    write = b land 2 <> 0;
    create = b land 4 <> 0;
    trunc = b land 8 <> 0;
    append = b land 16 <> 0;
    nonblock = b land 32 <> 0;
  }

let w_prot w (p : Syscall.prot) =
  W.u8 w
    ((if p.Syscall.pr then 1 else 0)
    lor (if p.Syscall.pw then 2 else 0)
    lor if p.Syscall.px then 4 else 0)

let r_prot r =
  let b = R.u8 r in
  if b > 7 then corrupt "bad prot";
  { Syscall.pr = b land 1 <> 0; pw = b land 2 <> 0; px = b land 4 <> 0 }

let w_whence w = function
  | Syscall.Seek_set -> W.u8 w 0
  | Syscall.Seek_cur -> W.u8 w 1
  | Syscall.Seek_end -> W.u8 w 2

let r_whence r =
  match R.u8 r with
  | 0 -> Syscall.Seek_set
  | 1 -> Syscall.Seek_cur
  | 2 -> Syscall.Seek_end
  | _ -> corrupt "bad whence"

let w_itimer w (s : Syscall.itimer_spec) =
  W.int w s.Syscall.interval_ns;
  W.int w s.Syscall.value_ns

let r_itimer r =
  let interval_ns = R.int r in
  let value_ns = R.int r in
  { Syscall.interval_ns; value_ns }

let w_domain w = function Syscall.Af_inet -> W.u8 w 0 | Syscall.Af_unix -> W.u8 w 1

let r_domain r =
  match R.u8 r with
  | 0 -> Syscall.Af_inet
  | 1 -> Syscall.Af_unix
  | _ -> corrupt "bad socket domain"

let w_socktype w = function
  | Syscall.Sock_stream -> W.u8 w 0
  | Syscall.Sock_dgram -> W.u8 w 1

let r_socktype r =
  match R.u8 r with
  | 0 -> Syscall.Sock_stream
  | 1 -> Syscall.Sock_dgram
  | _ -> corrupt "bad socket type"

let w_pollfd w (fd, e) =
  W.int w fd;
  w_events w e

let r_pollfd r =
  let fd = R.int r in
  let e = r_events r in
  (fd, e)

(* Sysno.index is the declaration-order position, so [Sysno.all] inverts it. *)
(* Keyed by [Sysno.index] — the dense constructor index the writer emits —
   NOT by position in [Sysno.all], whose order groups calls by category. *)
let sysno_of_index =
  let a = Array.make Sysno.slots None in
  List.iter (fun s -> a.(Sysno.index s) <- Some s) Sysno.all;
  a

let r_sysno r =
  let i = R.uint r in
  if i >= Array.length sysno_of_index then corrupt "bad sysno index";
  match sysno_of_index.(i) with
  | Some s -> s
  | None -> corrupt "bad sysno index"

(* ------------------------------------------------------------------ *)
(* Errno *)

let errno_table : Errno.t array =
  [|
    Errno.EPERM; ENOENT; ESRCH; EINTR; EIO; EBADF; EAGAIN; ENOMEM; EACCES;
    EFAULT; EBUSY; EEXIST; ENOTDIR; EISDIR; EINVAL; ENFILE; EMFILE; ENOSPC;
    ESPIPE; EPIPE; ERANGE; ENOSYS; ENOTEMPTY; ELOOP; ENOTSOCK; EDESTADDRREQ;
    EMSGSIZE; EPROTONOSUPPORT; EOPNOTSUPP; EADDRINUSE; EADDRNOTAVAIL;
    ENETUNREACH; ECONNABORTED; ECONNRESET; ENOBUFS; EISCONN; ENOTCONN;
    ETIMEDOUT; ECONNREFUSED; EALREADY; EINPROGRESS; ECHILD; EDEADLK;
    ENAMETOOLONG; EIDRM; ETIME; EREMOTEIO; EKEYREJECTED;
  |]

let errno_index : (Errno.t, int) Hashtbl.t =
  let h = Hashtbl.create 64 in
  Array.iteri (fun i e -> Hashtbl.replace h e i) errno_table;
  h

let write_errno w e =
  match Hashtbl.find_opt errno_index e with
  | Some i -> W.uint w i
  | None -> invalid_arg "Syswire.write_errno: unknown errno"

let read_errno r =
  let i = R.uint r in
  if i >= Array.length errno_table then corrupt "bad errno tag";
  errno_table.(i)

(* ------------------------------------------------------------------ *)
(* Calls *)

let write_call w (c : Syscall.call) =
  W.uint w (Sysno.index (Syscall.number c));
  match c with
  (* payload-free *)
  | Syscall.Gettimeofday | Time | Getpid | Gettid | Getpgrp | Getppid | Getgid
  | Getegid | Getuid | Geteuid | Getcwd | Getpriority | Getrusage | Times
  | Capget | Getitimer | Sysinfo | Uname | Sched_yield | Getpgid | Getsid
  | Sched_getaffinity | Clock_getres | Sync | Pipe | Epoll_create
  | Timerfd_create | Fork | Setsid | Rt_sigreturn | Sigaltstack | Pause ->
    ()
  | Clock_gettime `Realtime -> W.u8 w 0
  | Clock_gettime `Monotonic -> W.u8 w 1
  | Nanosleep n | Getrlimit n | Getrandom n | Alarm n | Brk n | Clone n
  | Exit n | Exit_group n | Wait4 n | Umask n | Eventfd n
  | Sched_setaffinity n ->
    W.int w n
  | Futex (Syscall.Futex_wait { addr; expected; timeout_ns }) ->
    W.u8 w 0;
    W.i64 w addr;
    W.int w expected;
    w_opt_int w timeout_ns
  | Futex (Syscall.Futex_wake { addr; count }) ->
    W.u8 w 1;
    W.i64 w addr;
    W.int w count
  | Ioctl (fd, op) -> (
    W.int w fd;
    match op with
    | Syscall.Fionread -> W.u8 w 0
    | Syscall.Fionbio b ->
      W.u8 w 1;
      W.bool w b
    | Syscall.Tiocgwinsz -> W.u8 w 2)
  | Fcntl (fd, op) -> (
    W.int w fd;
    match op with
    | Syscall.F_getfl -> W.u8 w 0
    | Syscall.F_setfl { nonblock } ->
      W.u8 w 1;
      W.bool w nonblock
    | Syscall.F_dupfd n ->
      W.u8 w 2;
      W.int w n)
  | Access s | Faccessat s | Stat s | Lstat s | Fstatat s | Readlink s
  | Readlinkat s | Statfs s | Utimensat s | Creat s | Unlink s | Mkdir s
  | Rmdir s | Mkdirat s | Unlinkat s | Execve s ->
    W.str w s
  | Lseek (fd, off, whence) ->
    W.int w fd;
    W.int w off;
    w_whence w whence
  | Fstat fd | Getdents fd | Syncfs fd | Fsync fd | Fdatasync fd
  | Fadvise64 fd | Timerfd_gettime fd | Fstatfs fd | Getdents64 fd
  | Readahead fd | Close fd | Dup fd | Accept fd | Getsockname fd
  | Getpeername fd ->
    W.int w fd
  | Getxattr (p, a) | Lgetxattr (p, a) ->
    W.str w p;
    W.str w a
  | Fgetxattr (fd, a) ->
    W.int w fd;
    W.str w a
  | Setitimer s -> w_itimer w s
  | Madvise { addr; len }
  | Mincore { addr; len }
  | Msync { addr; len }
  | Munmap { addr; len }
  | Mlock { addr; len }
  | Munlock { addr; len } ->
    W.i64 w addr;
    W.int w len
  | Read (fd, n) | Recvfrom (fd, n) | Recvmsg (fd, n) | Getsockopt (fd, n)
  | Bind (fd, n) | Listen (fd, n) | Connect (fd, n) | Ftruncate (fd, n)
  | Fchmod (fd, n) | Dup2 (fd, n) | Dup3 (fd, n) ->
    W.int w fd;
    W.int w n
  | Readv (fd, lens) ->
    W.int w fd;
    w_list w W.int lens
  | Pread64 (fd, n, off) ->
    W.int w fd;
    W.int w n;
    W.int w off
  | Preadv (fd, lens, off) ->
    W.int w fd;
    w_list w W.int lens;
    W.int w off
  | Select { readfds; writefds; timeout_ns }
  | Pselect6 { readfds; writefds; timeout_ns } ->
    w_list w W.int readfds;
    w_list w W.int writefds;
    w_opt_int w timeout_ns
  | Poll { fds; timeout_ns } | Ppoll { fds; timeout_ns } ->
    w_list w w_pollfd fds;
    w_opt_int w timeout_ns
  | Timerfd_settime (fd, s) ->
    W.int w fd;
    w_itimer w s
  | Flock (fd, op) ->
    W.int w fd;
    W.u8 w
      (match op with
      | Syscall.Lock_sh -> 0
      | Syscall.Lock_ex -> 1
      | Syscall.Lock_un -> 2)
  | Chmod (p, m) ->
    W.str w p;
    W.int w m
  | Chown (p, u, g) ->
    W.str w p;
    W.int w u;
    W.int w g
  | Write (fd, s) | Sendto (fd, s) | Sendmsg (fd, s) ->
    W.int w fd;
    W.str w s
  | Writev (fd, ss) | Sendmmsg (fd, ss) ->
    W.int w fd;
    w_list w W.str ss
  | Pwrite64 (fd, s, off) ->
    W.int w fd;
    W.str w s;
    W.int w off
  | Pwritev (fd, ss, off) ->
    W.int w fd;
    w_list w W.str ss;
    W.int w off
  | Epoll_wait { epfd; max_events; timeout_ns } ->
    W.int w epfd;
    W.int w max_events;
    w_opt_int w timeout_ns
  | Recvmmsg (fd, msgs, each) ->
    W.int w fd;
    W.int w msgs;
    W.int w each
  | Sendfile { out_fd; in_fd; count } ->
    W.int w out_fd;
    W.int w in_fd;
    W.int w count
  | Epoll_ctl { epfd; op; fd; events; user_data } ->
    W.int w epfd;
    W.u8 w
      (match op with
      | Syscall.Epoll_add -> 0
      | Syscall.Epoll_mod -> 1
      | Syscall.Epoll_del -> 2);
    W.int w fd;
    w_events w events;
    W.i64 w user_data
  | Setsockopt (fd, o, v) ->
    W.int w fd;
    W.int w o;
    W.int w v
  | Shutdown (fd, how) ->
    W.int w fd;
    W.u8 w
      (match how with
      | Syscall.Shut_rd -> 0
      | Syscall.Shut_wr -> 1
      | Syscall.Shut_rdwr -> 2)
  | Open (p, f) | Openat (p, f) ->
    W.str w p;
    w_open_flags w f
  | Pipe2 { nonblock } -> W.bool w nonblock
  | Socket (d, t) | Socketpair (d, t) ->
    w_domain w d;
    w_socktype w t
  | Accept4 { fd; nonblock } ->
    W.int w fd;
    W.bool w nonblock
  | Rename (a, b) | Renameat (a, b) | Link (a, b) | Linkat (a, b)
  | Symlink (a, b) | Symlinkat (a, b) ->
    W.str w a;
    W.str w b
  | Truncate (p, n) ->
    W.str w p;
    W.int w n
  | Mmap { len; prot; kind } -> (
    W.int w len;
    w_prot w prot;
    match kind with
    | Syscall.Map_anon -> W.u8 w 0
    | Syscall.Map_shared_anon -> W.u8 w 1
    | Syscall.Map_file fd ->
      W.u8 w 2;
      W.int w fd)
  | Mprotect { addr; len; prot } ->
    W.i64 w addr;
    W.int w len;
    w_prot w prot
  | Mremap { addr; old_len; new_len } ->
    W.i64 w addr;
    W.int w old_len;
    W.int w new_len
  | Kill (pid, sg) ->
    W.int w pid;
    W.int w sg
  | Tgkill (pid, tid, sg) ->
    W.int w pid;
    W.int w tid;
    W.int w sg
  | Setrlimit (a, b) | Prlimit64 (a, b) ->
    W.int w a;
    W.int w b
  | Rt_sigaction (sg, action) -> (
    W.int w sg;
    match action with
    | Syscall.Sig_default -> W.u8 w 0
    | Syscall.Sig_ignore -> W.u8 w 1
    | Syscall.Sig_handler id ->
      W.u8 w 2;
      W.int w id)
  | Rt_sigprocmask (how, sigs) ->
    W.u8 w
      (match how with
      | Syscall.Sig_block -> 0
      | Syscall.Sig_unblock -> 1
      | Syscall.Sig_setmask -> 2);
    w_list w W.int sigs
  | Shmget { key; size; create } ->
    W.int w key;
    W.int w size;
    W.bool w create
  | Shmat { shmid; readonly } ->
    W.int w shmid;
    W.bool w readonly
  | Shmdt { addr } -> W.i64 w addr
  | Shmctl { shmid; rmid } ->
    W.int w shmid;
    W.bool w rmid
  | Ipmon_register { calls; rb_addr; entry_addr } ->
    w_list w (fun w s -> W.uint w (Sysno.index s)) calls;
    W.i64 w rb_addr;
    W.i64 w entry_addr

let read_call r : Syscall.call =
  let tag = R.uint r in
  if tag >= Array.length sysno_of_index then corrupt "bad call tag";
  let sysno =
    match sysno_of_index.(tag) with
    | Some s -> s
    | None -> corrupt "bad call tag"
  in
  match sysno with
  | Sysno.Gettimeofday -> Syscall.Gettimeofday
  | Sysno.Clock_gettime -> (
    match R.u8 r with
    | 0 -> Syscall.Clock_gettime `Realtime
    | 1 -> Syscall.Clock_gettime `Monotonic
    | _ -> corrupt "bad clock id")
  | Sysno.Time -> Syscall.Time
  | Sysno.Getpid -> Syscall.Getpid
  | Sysno.Gettid -> Syscall.Gettid
  | Sysno.Getpgrp -> Syscall.Getpgrp
  | Sysno.Getppid -> Syscall.Getppid
  | Sysno.Getgid -> Syscall.Getgid
  | Sysno.Getegid -> Syscall.Getegid
  | Sysno.Getuid -> Syscall.Getuid
  | Sysno.Geteuid -> Syscall.Geteuid
  | Sysno.Getcwd -> Syscall.Getcwd
  | Sysno.Getpriority -> Syscall.Getpriority
  | Sysno.Getrusage -> Syscall.Getrusage
  | Sysno.Times -> Syscall.Times
  | Sysno.Capget -> Syscall.Capget
  | Sysno.Getitimer -> Syscall.Getitimer
  | Sysno.Sysinfo -> Syscall.Sysinfo
  | Sysno.Uname -> Syscall.Uname
  | Sysno.Sched_yield -> Syscall.Sched_yield
  | Sysno.Nanosleep -> Syscall.Nanosleep (R.int r)
  | Sysno.Getpgid -> Syscall.Getpgid
  | Sysno.Getsid -> Syscall.Getsid
  | Sysno.Getrlimit -> Syscall.Getrlimit (R.int r)
  | Sysno.Sched_getaffinity -> Syscall.Sched_getaffinity
  | Sysno.Clock_getres -> Syscall.Clock_getres
  | Sysno.Getrandom -> Syscall.Getrandom (R.int r)
  | Sysno.Futex -> (
    match R.u8 r with
    | 0 ->
      let addr = R.i64 r in
      let expected = R.int r in
      let timeout_ns = r_opt_int r in
      Syscall.Futex (Syscall.Futex_wait { addr; expected; timeout_ns })
    | 1 ->
      let addr = R.i64 r in
      let count = R.int r in
      Syscall.Futex (Syscall.Futex_wake { addr; count })
    | _ -> corrupt "bad futex op")
  | Sysno.Ioctl ->
    let fd = R.int r in
    Syscall.Ioctl
      ( fd,
        match R.u8 r with
        | 0 -> Syscall.Fionread
        | 1 -> Syscall.Fionbio (R.bool r)
        | 2 -> Syscall.Tiocgwinsz
        | _ -> corrupt "bad ioctl op" )
  | Sysno.Fcntl ->
    let fd = R.int r in
    Syscall.Fcntl
      ( fd,
        match R.u8 r with
        | 0 -> Syscall.F_getfl
        | 1 -> Syscall.F_setfl { nonblock = R.bool r }
        | 2 -> Syscall.F_dupfd (R.int r)
        | _ -> corrupt "bad fcntl op" )
  | Sysno.Access -> Syscall.Access (R.str r)
  | Sysno.Faccessat -> Syscall.Faccessat (R.str r)
  | Sysno.Lseek ->
    let fd = R.int r in
    let off = R.int r in
    Syscall.Lseek (fd, off, r_whence r)
  | Sysno.Stat -> Syscall.Stat (R.str r)
  | Sysno.Lstat -> Syscall.Lstat (R.str r)
  | Sysno.Fstat -> Syscall.Fstat (R.int r)
  | Sysno.Fstatat -> Syscall.Fstatat (R.str r)
  | Sysno.Getdents -> Syscall.Getdents (R.int r)
  | Sysno.Readlink -> Syscall.Readlink (R.str r)
  | Sysno.Readlinkat -> Syscall.Readlinkat (R.str r)
  | Sysno.Getxattr ->
    let p = R.str r in
    Syscall.Getxattr (p, R.str r)
  | Sysno.Lgetxattr ->
    let p = R.str r in
    Syscall.Lgetxattr (p, R.str r)
  | Sysno.Fgetxattr ->
    let fd = R.int r in
    Syscall.Fgetxattr (fd, R.str r)
  | Sysno.Alarm -> Syscall.Alarm (R.int r)
  | Sysno.Setitimer -> Syscall.Setitimer (r_itimer r)
  | Sysno.Timerfd_gettime -> Syscall.Timerfd_gettime (R.int r)
  | Sysno.Madvise ->
    let addr = R.i64 r in
    Syscall.Madvise { addr; len = R.int r }
  | Sysno.Fadvise64 -> Syscall.Fadvise64 (R.int r)
  | Sysno.Statfs -> Syscall.Statfs (R.str r)
  | Sysno.Fstatfs -> Syscall.Fstatfs (R.int r)
  | Sysno.Getdents64 -> Syscall.Getdents64 (R.int r)
  | Sysno.Readahead -> Syscall.Readahead (R.int r)
  | Sysno.Mincore ->
    let addr = R.i64 r in
    Syscall.Mincore { addr; len = R.int r }
  | Sysno.Read ->
    let fd = R.int r in
    Syscall.Read (fd, R.int r)
  | Sysno.Readv ->
    let fd = R.int r in
    Syscall.Readv (fd, r_list r R.int)
  | Sysno.Pread64 ->
    let fd = R.int r in
    let n = R.int r in
    Syscall.Pread64 (fd, n, R.int r)
  | Sysno.Preadv ->
    let fd = R.int r in
    let lens = r_list r R.int in
    Syscall.Preadv (fd, lens, R.int r)
  | Sysno.Select ->
    let readfds = r_list r R.int in
    let writefds = r_list r R.int in
    Syscall.Select { readfds; writefds; timeout_ns = r_opt_int r }
  | Sysno.Poll ->
    let fds = r_list r r_pollfd in
    Syscall.Poll { fds; timeout_ns = r_opt_int r }
  | Sysno.Pselect6 ->
    let readfds = r_list r R.int in
    let writefds = r_list r R.int in
    Syscall.Pselect6 { readfds; writefds; timeout_ns = r_opt_int r }
  | Sysno.Ppoll ->
    let fds = r_list r r_pollfd in
    Syscall.Ppoll { fds; timeout_ns = r_opt_int r }
  | Sysno.Sync -> Syscall.Sync
  | Sysno.Syncfs -> Syscall.Syncfs (R.int r)
  | Sysno.Fsync -> Syscall.Fsync (R.int r)
  | Sysno.Fdatasync -> Syscall.Fdatasync (R.int r)
  | Sysno.Timerfd_settime ->
    let fd = R.int r in
    Syscall.Timerfd_settime (fd, r_itimer r)
  | Sysno.Msync ->
    let addr = R.i64 r in
    Syscall.Msync { addr; len = R.int r }
  | Sysno.Flock ->
    let fd = R.int r in
    Syscall.Flock
      ( fd,
        match R.u8 r with
        | 0 -> Syscall.Lock_sh
        | 1 -> Syscall.Lock_ex
        | 2 -> Syscall.Lock_un
        | _ -> corrupt "bad flock op" )
  | Sysno.Chmod ->
    let p = R.str r in
    Syscall.Chmod (p, R.int r)
  | Sysno.Fchmod ->
    let fd = R.int r in
    Syscall.Fchmod (fd, R.int r)
  | Sysno.Chown ->
    let p = R.str r in
    let u = R.int r in
    Syscall.Chown (p, u, R.int r)
  | Sysno.Utimensat -> Syscall.Utimensat (R.str r)
  | Sysno.Write ->
    let fd = R.int r in
    Syscall.Write (fd, R.str r)
  | Sysno.Writev ->
    let fd = R.int r in
    Syscall.Writev (fd, r_list r R.str)
  | Sysno.Pwrite64 ->
    let fd = R.int r in
    let s = R.str r in
    Syscall.Pwrite64 (fd, s, R.int r)
  | Sysno.Pwritev ->
    let fd = R.int r in
    let ss = r_list r R.str in
    Syscall.Pwritev (fd, ss, R.int r)
  | Sysno.Epoll_wait ->
    let epfd = R.int r in
    let max_events = R.int r in
    Syscall.Epoll_wait { epfd; max_events; timeout_ns = r_opt_int r }
  | Sysno.Recvfrom ->
    let fd = R.int r in
    Syscall.Recvfrom (fd, R.int r)
  | Sysno.Recvmsg ->
    let fd = R.int r in
    Syscall.Recvmsg (fd, R.int r)
  | Sysno.Recvmmsg ->
    let fd = R.int r in
    let msgs = R.int r in
    Syscall.Recvmmsg (fd, msgs, R.int r)
  | Sysno.Getsockname -> Syscall.Getsockname (R.int r)
  | Sysno.Getpeername -> Syscall.Getpeername (R.int r)
  | Sysno.Getsockopt ->
    let fd = R.int r in
    Syscall.Getsockopt (fd, R.int r)
  | Sysno.Sendto ->
    let fd = R.int r in
    Syscall.Sendto (fd, R.str r)
  | Sysno.Sendmsg ->
    let fd = R.int r in
    Syscall.Sendmsg (fd, R.str r)
  | Sysno.Sendmmsg ->
    let fd = R.int r in
    Syscall.Sendmmsg (fd, r_list r R.str)
  | Sysno.Sendfile ->
    let out_fd = R.int r in
    let in_fd = R.int r in
    Syscall.Sendfile { out_fd; in_fd; count = R.int r }
  | Sysno.Epoll_ctl ->
    let epfd = R.int r in
    let op =
      match R.u8 r with
      | 0 -> Syscall.Epoll_add
      | 1 -> Syscall.Epoll_mod
      | 2 -> Syscall.Epoll_del
      | _ -> corrupt "bad epoll op"
    in
    let fd = R.int r in
    let events = r_events r in
    Syscall.Epoll_ctl { epfd; op; fd; events; user_data = R.i64 r }
  | Sysno.Setsockopt ->
    let fd = R.int r in
    let o = R.int r in
    Syscall.Setsockopt (fd, o, R.int r)
  | Sysno.Shutdown ->
    let fd = R.int r in
    Syscall.Shutdown
      ( fd,
        match R.u8 r with
        | 0 -> Syscall.Shut_rd
        | 1 -> Syscall.Shut_wr
        | 2 -> Syscall.Shut_rdwr
        | _ -> corrupt "bad shutdown how" )
  | Sysno.Open ->
    let p = R.str r in
    Syscall.Open (p, r_open_flags r)
  | Sysno.Openat ->
    let p = R.str r in
    Syscall.Openat (p, r_open_flags r)
  | Sysno.Creat -> Syscall.Creat (R.str r)
  | Sysno.Close -> Syscall.Close (R.int r)
  | Sysno.Dup -> Syscall.Dup (R.int r)
  | Sysno.Dup2 ->
    let a = R.int r in
    Syscall.Dup2 (a, R.int r)
  | Sysno.Dup3 ->
    let a = R.int r in
    Syscall.Dup3 (a, R.int r)
  | Sysno.Pipe2 -> Syscall.Pipe2 { nonblock = R.bool r }
  | Sysno.Eventfd -> Syscall.Eventfd (R.int r)
  | Sysno.Pipe -> Syscall.Pipe
  | Sysno.Socket ->
    let d = r_domain r in
    Syscall.Socket (d, r_socktype r)
  | Sysno.Socketpair ->
    let d = r_domain r in
    Syscall.Socketpair (d, r_socktype r)
  | Sysno.Bind ->
    let fd = R.int r in
    Syscall.Bind (fd, R.int r)
  | Sysno.Listen ->
    let fd = R.int r in
    Syscall.Listen (fd, R.int r)
  | Sysno.Accept -> Syscall.Accept (R.int r)
  | Sysno.Accept4 ->
    let fd = R.int r in
    Syscall.Accept4 { fd; nonblock = R.bool r }
  | Sysno.Connect ->
    let fd = R.int r in
    Syscall.Connect (fd, R.int r)
  | Sysno.Epoll_create -> Syscall.Epoll_create
  | Sysno.Timerfd_create -> Syscall.Timerfd_create
  | Sysno.Unlink -> Syscall.Unlink (R.str r)
  | Sysno.Rename ->
    let a = R.str r in
    Syscall.Rename (a, R.str r)
  | Sysno.Mkdir -> Syscall.Mkdir (R.str r)
  | Sysno.Rmdir -> Syscall.Rmdir (R.str r)
  | Sysno.Truncate ->
    let p = R.str r in
    Syscall.Truncate (p, R.int r)
  | Sysno.Ftruncate ->
    let fd = R.int r in
    Syscall.Ftruncate (fd, R.int r)
  | Sysno.Mkdirat -> Syscall.Mkdirat (R.str r)
  | Sysno.Unlinkat -> Syscall.Unlinkat (R.str r)
  | Sysno.Renameat ->
    let a = R.str r in
    Syscall.Renameat (a, R.str r)
  | Sysno.Link ->
    let a = R.str r in
    Syscall.Link (a, R.str r)
  | Sysno.Linkat ->
    let a = R.str r in
    Syscall.Linkat (a, R.str r)
  | Sysno.Symlink ->
    let a = R.str r in
    Syscall.Symlink (a, R.str r)
  | Sysno.Symlinkat ->
    let a = R.str r in
    Syscall.Symlinkat (a, R.str r)
  | Sysno.Umask -> Syscall.Umask (R.int r)
  | Sysno.Mmap ->
    let len = R.int r in
    let prot = r_prot r in
    let kind =
      match R.u8 r with
      | 0 -> Syscall.Map_anon
      | 1 -> Syscall.Map_shared_anon
      | 2 -> Syscall.Map_file (R.int r)
      | _ -> corrupt "bad map kind"
    in
    Syscall.Mmap { len; prot; kind }
  | Sysno.Munmap ->
    let addr = R.i64 r in
    Syscall.Munmap { addr; len = R.int r }
  | Sysno.Mprotect ->
    let addr = R.i64 r in
    let len = R.int r in
    Syscall.Mprotect { addr; len; prot = r_prot r }
  | Sysno.Mremap ->
    let addr = R.i64 r in
    let old_len = R.int r in
    Syscall.Mremap { addr; old_len; new_len = R.int r }
  | Sysno.Brk -> Syscall.Brk (R.int r)
  | Sysno.Mlock ->
    let addr = R.i64 r in
    Syscall.Mlock { addr; len = R.int r }
  | Sysno.Munlock ->
    let addr = R.i64 r in
    Syscall.Munlock { addr; len = R.int r }
  | Sysno.Clone -> Syscall.Clone (R.int r)
  | Sysno.Fork -> Syscall.Fork
  | Sysno.Execve -> Syscall.Execve (R.str r)
  | Sysno.Exit -> Syscall.Exit (R.int r)
  | Sysno.Exit_group -> Syscall.Exit_group (R.int r)
  | Sysno.Wait4 -> Syscall.Wait4 (R.int r)
  | Sysno.Kill ->
    let pid = R.int r in
    Syscall.Kill (pid, R.int r)
  | Sysno.Tgkill ->
    let pid = R.int r in
    let tid = R.int r in
    Syscall.Tgkill (pid, tid, R.int r)
  | Sysno.Setrlimit ->
    let a = R.int r in
    Syscall.Setrlimit (a, R.int r)
  | Sysno.Prlimit64 ->
    let a = R.int r in
    Syscall.Prlimit64 (a, R.int r)
  | Sysno.Sched_setaffinity -> Syscall.Sched_setaffinity (R.int r)
  | Sysno.Setsid -> Syscall.Setsid
  | Sysno.Rt_sigaction ->
    let sg = R.int r in
    Syscall.Rt_sigaction
      ( sg,
        match R.u8 r with
        | 0 -> Syscall.Sig_default
        | 1 -> Syscall.Sig_ignore
        | 2 -> Syscall.Sig_handler (R.int r)
        | _ -> corrupt "bad sigaction" )
  | Sysno.Rt_sigprocmask ->
    let how =
      match R.u8 r with
      | 0 -> Syscall.Sig_block
      | 1 -> Syscall.Sig_unblock
      | 2 -> Syscall.Sig_setmask
      | _ -> corrupt "bad sigmask how"
    in
    Syscall.Rt_sigprocmask (how, r_list r R.int)
  | Sysno.Rt_sigreturn -> Syscall.Rt_sigreturn
  | Sysno.Sigaltstack -> Syscall.Sigaltstack
  | Sysno.Pause -> Syscall.Pause
  | Sysno.Shmget ->
    let key = R.int r in
    let size = R.int r in
    Syscall.Shmget { key; size; create = R.bool r }
  | Sysno.Shmat ->
    let shmid = R.int r in
    Syscall.Shmat { shmid; readonly = R.bool r }
  | Sysno.Shmdt -> Syscall.Shmdt { addr = R.i64 r }
  | Sysno.Shmctl ->
    let shmid = R.int r in
    Syscall.Shmctl { shmid; rmid = R.bool r }
  | Sysno.Ipmon_register ->
    let calls = r_list r r_sysno in
    let rb_addr = R.i64 r in
    Syscall.Ipmon_register { calls; rb_addr; entry_addr = R.i64 r }

(* ------------------------------------------------------------------ *)
(* Results *)

let write_result w (res : Syscall.result) =
  match res with
  | Syscall.Ok_unit -> W.u8 w 0
  | Syscall.Ok_int n ->
    W.u8 w 1;
    W.int w n
  | Syscall.Ok_int64 v ->
    W.u8 w 2;
    W.i64 w v
  | Syscall.Ok_data s ->
    W.u8 w 3;
    W.str w s
  | Syscall.Ok_str s ->
    W.u8 w 4;
    W.str w s
  | Syscall.Ok_stat st ->
    W.u8 w 5;
    W.int w st.Syscall.st_ino;
    W.int w st.Syscall.st_size;
    W.u8 w
      (match st.Syscall.st_kind with
      | `Reg -> 0
      | `Dir -> 1
      | `Fifo -> 2
      | `Sock -> 3
      | `Special -> 4);
    W.int w st.Syscall.st_mtime_ns
  | Syscall.Ok_pair (a, b) ->
    W.u8 w 6;
    W.int w a;
    W.int w b
  | Syscall.Ok_poll l ->
    W.u8 w 7;
    w_list w w_pollfd l
  | Syscall.Ok_epoll l ->
    W.u8 w 8;
    w_list w
      (fun w (ud, e) ->
        W.i64 w ud;
        w_events w e)
      l
  | Syscall.Ok_accept { conn_fd; peer_port } ->
    W.u8 w 9;
    W.int w conn_fd;
    W.int w peer_port
  | Syscall.Ok_dents l ->
    W.u8 w 10;
    w_list w W.str l
  | Syscall.Ok_itimer s ->
    W.u8 w 11;
    w_itimer w s
  | Syscall.Error e ->
    W.u8 w 12;
    write_errno w e

let read_result r : Syscall.result =
  match R.u8 r with
  | 0 -> Syscall.Ok_unit
  | 1 -> Syscall.Ok_int (R.int r)
  | 2 -> Syscall.Ok_int64 (R.i64 r)
  | 3 -> Syscall.Ok_data (R.str r)
  | 4 -> Syscall.Ok_str (R.str r)
  | 5 ->
    let st_ino = R.int r in
    let st_size = R.int r in
    let st_kind =
      match R.u8 r with
      | 0 -> `Reg
      | 1 -> `Dir
      | 2 -> `Fifo
      | 3 -> `Sock
      | 4 -> `Special
      | _ -> corrupt "bad stat kind"
    in
    Syscall.Ok_stat { st_ino; st_size; st_kind; st_mtime_ns = R.int r }
  | 6 ->
    let a = R.int r in
    Syscall.Ok_pair (a, R.int r)
  | 7 -> Syscall.Ok_poll (r_list r r_pollfd)
  | 8 ->
    Syscall.Ok_epoll
      (r_list r (fun r ->
           let ud = R.i64 r in
           (ud, r_events r)))
  | 9 ->
    let conn_fd = R.int r in
    Syscall.Ok_accept { conn_fd; peer_port = R.int r }
  | 10 -> Syscall.Ok_dents (r_list r R.str)
  | 11 -> Syscall.Ok_itimer (r_itimer r)
  | 12 -> Syscall.Error (read_errno r)
  | _ -> corrupt "bad result tag"
