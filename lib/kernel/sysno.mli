(** Symbolic system-call numbers: one constructor per supported call.

    The monitoring policy (Table 1) and all per-call statistics key off this
    type, so the compiler checks that every classification and handler
    table is exhaustive. The groupings in the definition mirror the policy
    levels they end up in. *)

type t =
  (* -- process / identity / time queries: BASE_LEVEL unconditional -- *)
  | Gettimeofday
  | Clock_gettime
  | Time
  | Getpid
  | Gettid
  | Getpgrp
  | Getppid
  | Getgid
  | Getegid
  | Getuid
  | Geteuid
  | Getcwd
  | Getpriority
  | Getrusage
  | Times
  | Capget
  | Getitimer
  | Sysinfo
  | Uname
  | Sched_yield
  | Nanosleep
  | Getpgid
  | Getsid
  | Getrlimit
  | Sched_getaffinity
  | Clock_getres
  | Getrandom
  (* -- BASE_LEVEL conditional -- *)
  | Futex
  | Ioctl
  | Fcntl
  (* -- NONSOCKET_RO_LEVEL unconditional -- *)
  | Access
  | Faccessat
  | Lseek
  | Stat
  | Lstat
  | Fstat
  | Fstatat
  | Getdents
  | Readlink
  | Readlinkat
  | Getxattr
  | Lgetxattr
  | Fgetxattr
  | Alarm
  | Setitimer
  | Timerfd_gettime
  | Madvise
  | Fadvise64
  | Statfs
  | Fstatfs
  | Getdents64
  | Readahead
  | Mincore
  (* -- read family: NONSOCKET_RO (non-socket fds) / SOCKET_RO (sockets) -- *)
  | Read
  | Readv
  | Pread64
  | Preadv
  | Select
  | Poll
  | Pselect6
  | Ppoll
  (* -- NONSOCKET_RW_LEVEL unconditional -- *)
  | Sync
  | Syncfs
  | Fsync
  | Fdatasync
  | Timerfd_settime
  | Msync
  | Flock
  | Chmod
  | Fchmod
  | Chown
  | Utimensat
  (* -- write family: NONSOCKET_RW (non-socket fds) / SOCKET_RW (sockets) -- *)
  | Write
  | Writev
  | Pwrite64
  | Pwritev
  (* -- SOCKET_RO_LEVEL -- *)
  | Epoll_wait
  | Recvfrom
  | Recvmsg
  | Recvmmsg
  | Getsockname
  | Getpeername
  | Getsockopt
  (* -- SOCKET_RW_LEVEL -- *)
  | Sendto
  | Sendmsg
  | Sendmmsg
  | Sendfile
  | Epoll_ctl
  | Setsockopt
  | Shutdown
  (* -- always monitored: file-descriptor lifecycle -- *)
  | Open
  | Openat
  | Creat
  | Close
  | Dup
  | Dup2
  | Dup3
  | Pipe2
  | Eventfd
  | Pipe
  | Socket
  | Socketpair
  | Bind
  | Listen
  | Accept
  | Accept4
  | Connect
  | Epoll_create
  | Timerfd_create
  | Unlink
  | Rename
  | Mkdir
  | Rmdir
  | Truncate
  | Ftruncate
  | Mkdirat
  | Unlinkat
  | Renameat
  | Link
  | Linkat
  | Symlink
  | Symlinkat
  | Umask
  (* -- always monitored: memory management -- *)
  | Mmap
  | Munmap
  | Mprotect
  | Mremap
  | Brk
  | Mlock
  | Munlock
  (* -- always monitored: process / thread lifecycle -- *)
  | Clone
  | Fork
  | Execve
  | Exit
  | Exit_group
  | Wait4
  | Kill
  | Tgkill
  | Setrlimit
  | Prlimit64
  | Sched_setaffinity
  | Setsid
  (* -- always monitored: signal handling -- *)
  | Rt_sigaction
  | Rt_sigprocmask
  | Rt_sigreturn
  | Sigaltstack
  | Pause
  (* -- always monitored: System V shared memory -- *)
  | Shmget
  | Shmat
  | Shmdt
  | Shmctl
  (* -- ReMon's added registration call (Section 3.5) -- *)
  | Ipmon_register

val to_string : t -> string

val all : t list
(** Every supported call, in declaration order. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val index : t -> int
(** Dense 0-based constructor index (constant-constructor representation);
    keys per-syscall counter arrays. *)

val slots : int
(** Strict upper bound on {!index}; sizes index-keyed arrays. *)

module Set : Set.S with type elt = t
