(* Discrete-event cooperative scheduler.

   Simulated threads are OCaml 5 effect-handler coroutines. A thread
   performs [Syscall_eff] and [Compute_eff] effects; the handler captures
   the continuation and hands control to the kernel, which decides when (in
   virtual time) the thread resumes. All replicas of a benchmark therefore
   run "in parallel" on the simulated machine while the host execution stays
   single-threaded and deterministic.

   Blocking model: a blocked thread is parked with a [retry] thunk. Any
   state mutation calls [kick], which re-runs all parked retries at the
   current virtual time (cheap at simulation scale, and deterministic:
   retries run in park order).

   Hot-path discipline: a suspended thread has exactly one pending
   continuation at any instant, so the continuation and its resume value
   are stored in per-thread scratch fields ([Proc.resume_kind]/[resume_k]/
   [resume_r]) and the scheduled event is the thread's preallocated
   [resume_thunk] — resuming a syscall or compute step allocates nothing.
   The run loop pops through [Event_queue.pop_into] (no tuple/option per
   event), and plain [schedule] uses [Event_queue.add_] (no handle). *)

open Remon_sim

type _ Effect.t +=
  | Syscall_eff : Syscall.call -> Syscall.result Effect.t
  | Compute_eff : Vtime.t -> unit Effect.t
  | Now_eff : Vtime.t Effect.t
  | Self_eff : Proc.thread Effect.t
  | Wait_user_eff : (unit -> bool) -> unit Effect.t
      (* user-space busy-wait on a memory condition (no syscall): used by
         replication agents that synchronize through shared memory *)

exception Thread_killed

type t = {
  events : (unit -> unit) Event_queue.t;
  slot : (unit -> unit) Event_queue.slot; (* run-loop landing pad *)
  mutable now : Vtime.t;
  mutable syscall_handler :
    Proc.thread -> Syscall.call -> return:(Syscall.result -> unit) -> unit;
  mutable on_thread_exit : Proc.thread -> unit;
  mutable blocked : Proc.thread list; (* park order *)
  mutable kick_scheduled : bool;
  mutable kick_thunk : unit -> unit; (* preallocated retry sweep *)
  mutable events_processed : int;
  mutable max_events : int; (* runaway-simulation guard *)
}

let nop () = ()

let create () =
  let t =
    {
      events = Event_queue.create ();
      slot = Event_queue.make_slot nop;
      now = Vtime.zero;
      syscall_handler =
        (fun _ _ ~return:_ -> failwith "Sched: no syscall handler installed");
      on_thread_exit = (fun _ -> ());
      blocked = [];
      kick_scheduled = false;
      kick_thunk = nop;
      events_processed = 0;
      max_events = 200_000_000;
    }
  in
  t.kick_thunk <-
    (fun () ->
      t.kick_scheduled <- false;
      (* Retries may park threads again (or park new ones): run them
         against a snapshot with the live list emptied, then merge the
         survivors back with whatever was parked meanwhile. *)
      let snapshot = t.blocked in
      t.blocked <- [];
      let still =
        List.filter
          (fun th ->
            match th.Proc.tstate with
            | Proc.Blocked b -> not (b.Proc.retry ())
            | Proc.Ready | Proc.Trace_stopped _ | Proc.Dead -> false)
          snapshot
      in
      t.blocked <- still @ t.blocked);
  t

let now t = t.now

let schedule_at t ~time thunk =
  let time = Vtime.max time t.now in
  Event_queue.add t.events ~time thunk

(* Handle-free scheduling: the hot path for syscall returns and computes. *)
let schedule t ~time thunk =
  Event_queue.add_ t.events ~time:(Vtime.max time t.now) thunk

(* Pre-lane scheduling: at a time tie the thunk runs before every normally
   scheduled event. The shard coordinator delivers cross-host messages
   through this lane so that delivery order relative to locally-scheduled
   events at the same instant is a property of the message timestamps, not
   of which synchronization round happened to drain the link. *)
let schedule_pre t ~time thunk =
  Event_queue.add_pre_ t.events ~time:(Vtime.max time t.now) thunk

(* ------------------------------------------------------------------ *)
(* Thread bodies *)

let resume_value :
    type a. t -> Proc.thread -> (a, unit) Effect.Deep.continuation -> a -> unit
    =
 fun _t th k v ->
  match th.Proc.tstate with
  | Proc.Dead -> () (* killed while suspended: drop the continuation *)
  | _ ->
    th.Proc.tstate <- Proc.Ready;
    Effect.Deep.continue k v

(* The body of every thread's preallocated [resume_thunk]: resume from the
   scratch slots. *)
let do_resume t th =
  let kind = th.Proc.resume_kind in
  th.Proc.resume_kind <- 0;
  if kind = 1 then begin
    let k : (Syscall.result, unit) Effect.Deep.continuation =
      Obj.obj th.Proc.resume_k
    in
    th.Proc.resume_k <- Obj.repr 0;
    resume_value t th k th.Proc.resume_r
  end
  else if kind = 2 then begin
    let k : (unit, unit) Effect.Deep.continuation = Obj.obj th.Proc.resume_k in
    th.Proc.resume_k <- Obj.repr 0;
    resume_value t th k ()
  end
  else failwith "Sched: resume with no pending continuation"

(* The body of every thread's preallocated [return_fn]. *)
let syscall_return t th r =
  if th.Proc.resume_kind <> -1 then
    failwith "Sched: syscall return invoked twice";
  th.Proc.resume_kind <- 1;
  th.Proc.resume_r <- r;
  schedule t ~time:th.Proc.clock th.Proc.resume_thunk

(* Stash the continuation in the thread's scratch and schedule its
   preallocated resume event. *)
let schedule_unit_resume t th (k : (unit, unit) Effect.Deep.continuation) =
  th.Proc.resume_k <- Obj.repr k;
  th.Proc.resume_kind <- 2;
  schedule t ~time:th.Proc.clock th.Proc.resume_thunk

let park t th ~what ~(retry : unit -> bool) =
  let b =
    { Proc.retry; timeout = None; interrupt = None; blocked_since = t.now; what }
  in
  th.Proc.tstate <- Proc.Blocked b;
  t.blocked <- t.blocked @ [ th ];
  b

let run_thread_body t (th : Proc.thread) (body : unit -> unit) =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          th.Proc.tstate <- Proc.Dead;
          t.on_thread_exit th);
      exnc =
        (fun e ->
          match e with
          | Thread_killed ->
            th.Proc.tstate <- Proc.Dead;
            t.on_thread_exit th
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Syscall_eff call ->
            Some
              (fun (k : (a, _) continuation) ->
                th.Proc.resume_k <- Obj.repr k;
                th.Proc.resume_kind <- -1;
                t.syscall_handler th call ~return:th.Proc.return_fn)
          | Compute_eff d ->
            Some
              (fun (k : (a, _) continuation) ->
                th.Proc.clock <- Vtime.add th.Proc.clock d;
                schedule_unit_resume t th k)
          | Now_eff -> Some (fun (k : (a, _) continuation) -> continue k th.Proc.clock)
          | Self_eff -> Some (fun (k : (a, _) continuation) -> continue k th)
          | Wait_user_eff cond ->
            Some
              (fun (k : (a, _) continuation) ->
                if cond () then continue k ()
                else begin
                  let b =
                    park t th ~what:"user-space wait" ~retry:(fun () -> false)
                  in
                  b.Proc.retry <-
                    (fun () ->
                      match th.Proc.tstate with
                      | Proc.Dead -> true
                      | _ ->
                        if cond () then begin
                          th.Proc.clock <- Vtime.max th.Proc.clock t.now;
                          schedule_unit_resume t th k;
                          true
                        end
                        else false)
                end)
          | _ -> None);
    }

let spawn t th body =
  (* install the per-thread resume machinery exactly once *)
  th.Proc.resume_thunk <- (fun () -> do_resume t th);
  th.Proc.return_fn <- (fun r -> syscall_return t th r);
  schedule t ~time:th.Proc.clock (fun () ->
      match th.Proc.tstate with
      | Proc.Dead -> () (* killed before it ever ran *)
      | _ -> run_thread_body t th body)

(* ------------------------------------------------------------------ *)
(* Blocking *)

let kick t =
  if not t.kick_scheduled then begin
    t.kick_scheduled <- true;
    schedule t ~time:t.now t.kick_thunk
  end

(* Removes a thread from the park list without retrying (used when a tracer
   or a kill transitions it out of Blocked directly). *)
let unpark t th = t.blocked <- List.filter (fun th' -> th' != th) t.blocked

let blocked_threads t =
  List.filter
    (fun th -> match th.Proc.tstate with Proc.Blocked _ -> true | _ -> false)
    t.blocked

(* ------------------------------------------------------------------ *)
(* Main loop *)

exception Event_budget_exhausted

(* Unbounded drain: the common case, kept free of any per-event bound
   check or peek. *)
let run_all t =
  let slot = t.slot in
  let running = ref true in
  while !running do
    if not (Event_queue.pop_into t.events slot) then running := false
    else begin
      t.events_processed <- t.events_processed + 1;
      if t.events_processed > t.max_events then raise Event_budget_exhausted;
      let time = Event_queue.slot_time slot in
      if Vtime.(time > t.now) then t.now <- time;
      (Event_queue.slot_payload slot) ()
    end
  done

(* Bounded drain. [strict] selects [time < limit] (shard windows) vs
   [time <= limit] (the historical [run ~until] contract). The first
   out-of-bound event is *peeked*, not popped: the old loop popped it to
   look at its timestamp and then dropped it on the floor, silently losing
   one future event per bounded run. *)
let run_bounded t ~limit ~strict =
  let slot = t.slot in
  let running = ref true in
  while !running do
    match Event_queue.peek_time t.events with
    | None -> running := false
    | Some time when (if strict then Vtime.(time >= limit) else Vtime.(time > limit)) ->
      running := false
    | Some _ ->
      if Event_queue.pop_into t.events slot then begin
        t.events_processed <- t.events_processed + 1;
        if t.events_processed > t.max_events then raise Event_budget_exhausted;
        let time = Event_queue.slot_time slot in
        if Vtime.(time > t.now) then t.now <- time;
        (Event_queue.slot_payload slot) ()
      end
      else running := false
  done

let run ?until t =
  match until with
  | None -> run_all t
  | Some limit -> run_bounded t ~limit ~strict:false

(* Conservative-parallel window: process everything strictly below
   [bound], leave the rest queued. *)
let run_before t ~bound = run_bounded t ~limit:bound ~strict:true

(* Time of the next runnable event, [Vtime.infinity] on an empty queue:
   the E_i input of the shard synchronizer's lookahead fixed point. *)
let next_event_time t =
  match Event_queue.peek_time t.events with
  | Some time -> time
  | None -> Vtime.infinity

(* Effect-performing API for program bodies. *)
let syscall call : Syscall.result = Effect.perform (Syscall_eff call)
let compute d : unit = Effect.perform (Compute_eff d)
let vnow () : Vtime.t = Effect.perform Now_eff
let self () : Proc.thread = Effect.perform Self_eff

let wait_user cond : unit = Effect.perform (Wait_user_eff cond)
