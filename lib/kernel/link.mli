(** Typed inter-host link — the shard boundary of sharded (PDES) runs.

    Unidirectional FIFO of timestamped messages with a fixed positive
    propagation latency; the latency doubles as the conservative
    synchronizer's lookahead. Mutex-protected so the sending and receiving
    shards can live on different domains; message order is fixed by the
    sender's virtual clock plus a per-link sequence number, so draining is
    deterministic regardless of domain scheduling. *)

open Remon_sim

type payload =
  | Syn of { conn : int; src_port : int; dst_port : int; window : int }
  | Syn_ok of { conn : int; window : int }
  | Syn_refused of { conn : int }
  | Data of { conn : int; data : string }
  | Window of { conn : int; bytes : int }
  | Fin of { conn : int }
  | Rst of { conn : int }

type msg = { at : Vtime.t; seq : int; payload : payload }

type t

val create : src:int -> dst:int -> latency:Vtime.t -> t
(** Raises [Invalid_argument] on a non-positive latency: zero lookahead
    would deadlock the conservative synchronizer. *)

val src : t -> int
val dst : t -> int
val latency : t -> Vtime.t

val send : t -> now:Vtime.t -> payload -> unit
(** Enqueue for delivery at [now + latency]. Source-shard side only. *)

val peek_at : t -> Vtime.t
(** Earliest queued delivery time; [Vtime.infinity] when empty. *)

val drain_before : t -> bound:Vtime.t -> msg list
(** Pops every message with [at < bound] in send order. Complete and final
    for that window, provided [bound] respects the sender's frontier +
    latency (the conservative invariant). *)

val is_empty : t -> bool

val stats : t -> int * int
(** [(messages_sent, data_bytes)] lifetime tallies. *)
