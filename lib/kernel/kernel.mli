(** Kernel facade: construction, process management, ptrace attachment, the
    IK-B broker hookup, and the run loop. This is the main entry point for
    MVEE layers and workloads; shared data types live in {!Proc} and
    {!Syscall}. *)

open Remon_sim
open Remon_util

type t = Kstate.t

val create :
  ?cost:Cost_model.t ->
  ?seed:int ->
  ?net_latency:Vtime.t ->
  ?sock_buf:int ->
  unit ->
  t
(** A fresh simulated machine: empty process table, standard filesystem
    fixture (/tmp, /etc, /dev, /var/www, ...), one network with the given
    one-way link latency. [?sock_buf] sets the default per-stream
    send/receive buffer cap (see {!Net.default_bufcap}); individual
    sockets can override it via [SO_SNDBUF]/[SO_RCVBUF]. *)

(** {1 Introspection} *)

val state : t -> Kstate.t
val sched : t -> Sched.t
val vfs : t -> Vfs.t
val net : t -> Net.t
val shm_registry : t -> Shm.t
val cost : t -> Cost_model.t
val stats : t -> Kstate.counters
val now : t -> Vtime.t
val rng : t -> Rng.t

(** {1 Processes} *)

val make_process :
  t ->
  ?replica_info:Proc.replica_info ->
  ?parent:int ->
  name:string ->
  vm_seed:int ->
  unit ->
  Proc.process
(** A process control block with its own (ASLR-seeded) address space; no
    threads yet. *)

val add_thread : t -> Proc.process -> start_clock:Vtime.t -> Proc.thread

val spawn_process :
  t ->
  ?replica_info:Proc.replica_info ->
  ?entries:(unit -> unit) array ->
  ?start_clock:Vtime.t ->
  name:string ->
  vm_seed:int ->
  (unit -> unit) ->
  Proc.process
(** Creates a process whose main thread runs the given body (an effect-
    performing coroutine); [entries] seeds the Clone entry table. *)

val on_process_exit : Proc.process -> (int -> unit) -> unit
(** Runs the callback with the exit code when the process dies (or
    immediately if it is already dead). *)

(** {1 Tracing (ptrace)} *)

val attach_tracer : Proc.process -> Proc.tracer -> unit
val detach_tracer : Proc.process -> unit

val resume : t -> Proc.thread -> Proc.resume_action -> unit
(** Resume a trace-stopped thread. Raises [Invalid_argument] if the thread
    is not stopped. *)

val interrupt_blocked : t -> Proc.thread -> Syscall.result -> bool
(** Force-complete a blocked syscall (GHUMVEE's Section 3.8 abort).
    Returns false if the thread was not interruptibly blocked. *)

val inject_signal_now : t -> Proc.thread -> int -> unit
(** Re-initiate a deferred signal at a rendezvous point, bypassing further
    delivery stops. *)

val post_signal : t -> Proc.process -> int -> unit
val kill_process : t -> Proc.process -> code:int -> unit

(** {1 IK-B broker / IP-MON hookup} *)

val set_broker : t -> Kstate.broker -> unit
val clear_broker : t -> unit

val set_fault_hook :
  t -> (Proc.thread -> Syscall.call -> Kstate.fault_decision) -> unit
(** Install the fault-injection hook consulted once per syscall entry,
    before broker routing. The MVEE's fault layer uses this to inject
    crashes, corrupted captures, stalls and transient errors that the
    monitors then detect through their normal paths. *)

val clear_fault_hook : t -> unit

val register_broker : t -> group_id:int -> Kstate.broker -> unit
(** Group-scoped broker registration: one kernel can host several replica
    sets (a fleet), each with its own broker. A thread resolves to its
    group's broker through [Proc.replica_info.group_id]; threads outside
    any group (clients, load balancers) fall back to the kernel-wide
    [set_broker] slot, if any. *)

val unregister_broker : t -> group_id:int -> unit

val register_fault_hook :
  t ->
  group_id:int ->
  (Proc.thread -> Syscall.call -> Kstate.fault_decision) ->
  unit
(** Group-scoped fault hook; same resolution rule as {!register_broker}. *)

val unregister_fault_hook : t -> group_id:int -> unit

val prepare_ipmon : t -> pid:int -> Proc.ipmon_registration -> unit
(** Stage the registration (including the invoke closure, which cannot
    travel through the syscall interface) before the replica issues
    [ipmon_register]. *)

val execute_raw :
  t -> Proc.thread -> Syscall.call -> ret:(Syscall.result -> unit) -> unit
(** Stop-free execution used by IP-MON once the token verified. *)

val monitor_path :
  t -> Proc.thread -> Syscall.call -> return:(Syscall.result -> unit) -> unit
(** Re-enter the monitored (ptrace) path for a call IP-MON declined
    (Figure 2, step 4'). *)

val wait_until :
  t ->
  Proc.thread ->
  what:string ->
  poll:(unit -> 'a option) ->
  on_ready:('a -> unit) ->
  unit
(** Park a thread until [poll] succeeds; for monitor-internal waits (IP-MON
    slaves waiting on the replication buffer). *)

val kick : t -> unit
(** Re-run all parked retries; call after mutating shared state. *)

val schedule : t -> time:Vtime.t -> (unit -> unit) -> unit

(** {1 Running} *)

val run : ?until:Vtime.t -> t -> unit
(** Drain the event queue (to [until] if given). Returns when no events
    remain; threads still blocked at that point are either servers waiting
    for input or deadlocks — see {!blocked_report}. *)

val blocked_report : t -> string list

(** {1 Diagnostics} *)

val enable_tracing : t -> unit
(** Record one line per syscall with the route IK-B chose. *)

val trace : t -> string list
(** The recorded trace, in chronological order. *)

val set_obs : t -> Remon_obs.Obs.t -> unit
(** Attach a structured trace/metrics sink. Emission points throughout
    the dispatcher and monitors stamp events with virtual time only, so a
    given seed yields a byte-identical exported trace. *)

val clear_obs : t -> unit

val obs : t -> Remon_obs.Obs.t option
(** The attached sink, if any ([None] = observability off, the zero-cost
    path). *)
