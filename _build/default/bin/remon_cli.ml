(* remon: command-line front end to the ReMon reproduction.

     remon list                          enumerate registered workloads
     remon run -w parsec.dedup           run a workload under an MVEE config
     remon attack [-b varan]             stage the Section 4 attack scenarios
     remon policy                        print the Table 1 classification *)

open Cmdliner
open Remon_core
open Remon_sim
open Remon_workloads

(* ------------------------------------------------------------------ *)
(* Shared options *)

let backend_conv =
  let parse = function
    | "native" -> Ok Mvee.Native
    | "ghumvee" -> Ok Mvee.Ghumvee_only
    | "varan" -> Ok Mvee.Varan
    | "remon" -> Ok Mvee.Remon
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt b = Format.pp_print_string fmt (Mvee.backend_to_string b) in
  Arg.conv (parse, print)

let level_conv =
  let parse s =
    match Classification.level_of_string s with
    | Some l -> Ok (Some l)
    | None ->
      if s = "all" || s = "monitor-all" then Ok None
      else Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print fmt = function
    | Some l -> Format.pp_print_string fmt (Classification.level_to_string l)
    | None -> Format.pp_print_string fmt "monitor-all"
  in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Mvee.Remon
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"MVEE backend: native, ghumvee, varan or remon.")

let replicas_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Number of replicas.")

let level_arg =
  Arg.(
    value
    & opt level_conv (Some Classification.Socket_rw_level)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Spatial exemption level: base, nonsocket_ro, nonsocket_rw, \
           socket_ro, socket_rw, or monitor-all.")

let latency_arg =
  Arg.(
    value & opt float 0.1
    & info [ "latency" ] ~docv:"MS" ~doc:"One-way network latency in ms.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let config_of backend nreplicas level seed =
  {
    Mvee.default_config with
    Mvee.backend;
    nreplicas;
    seed;
    policy =
      (match level with
      | Some l -> Policy.spatial l
      | None -> Policy.monitor_everything);
  }

(* ------------------------------------------------------------------ *)
(* Commands *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, w) -> Printf.printf "%-28s %s\n" name (Registry.describe w))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List registered workloads.") Term.(const run $ const ())

let run_workload name backend nreplicas level latency seed trace_lines =
  match Registry.find name with
  | None ->
    Printf.eprintf "unknown workload %S; try `remon list`\n" name;
    exit 2
  | Some workload -> (
    let config = config_of backend nreplicas level seed in
    let latency = Vtime.of_float_ns (latency *. 1e6) in
    let dump_trace kernel =
      if trace_lines > 0 then begin
        Printf.printf "\nsyscall trace (first %d lines):\n" trace_lines;
        List.iteri
          (fun i line -> if i < trace_lines then Printf.printf "  %s\n" line)
          (Remon_kernel.Kernel.trace kernel)
      end
    in
    Printf.printf "workload : %s\n" (Registry.describe workload);
    Printf.printf "backend  : %s, %d replica(s), policy %s\n\n"
      (Mvee.backend_to_string backend)
      nreplicas
      (Policy.to_string config.Mvee.policy);
    match workload with
    | Registry.Profile_workload profile ->
      let native = Runner.run_profile profile { config with Mvee.backend = Mvee.Native } in
      let under =
        if trace_lines > 0 then begin
          let kernel = Remon_kernel.Kernel.create ~seed:config.Mvee.seed () in
          Remon_kernel.Kernel.enable_tracing kernel;
          let h = Mvee.launch kernel config ~name ~body:(Profile.body profile) in
          Remon_kernel.Kernel.run kernel;
          let outcome = Mvee.finish h in
          dump_trace kernel;
          { Runner.duration = outcome.Mvee.duration; outcome }
        end
        else Runner.run_profile profile config
      in
      let o = under.Runner.outcome in
      Printf.printf "native runtime     : %s\n" (Vtime.to_string native.Runner.duration);
      Printf.printf "mvee runtime       : %s (normalized %.2f)\n"
        (Vtime.to_string under.Runner.duration)
        (Vtime.to_float_ns under.Runner.duration
        /. Vtime.to_float_ns native.Runner.duration);
      Printf.printf "syscalls           : %d (monitored %d, fast-path %d)\n"
        o.Mvee.syscalls o.Mvee.monitored o.Mvee.ipmon_fastpath;
      Printf.printf "ptrace stops       : %d, rendezvous %d\n" o.Mvee.ptrace_stops
        o.Mvee.rendezvous;
      Printf.printf "rb records/resets  : %d/%d\n" o.Mvee.rb_records o.Mvee.rb_resets
    | Registry.Server_workload (server, client) ->
      let native =
        Runner.run_server_bench ~latency ~server ~client
          { config with Mvee.backend = Mvee.Native }
      in
      let under = Runner.run_server_bench ~latency ~server ~client config in
      Printf.printf "native client time : %s\n"
        (Vtime.to_string native.Runner.client_duration);
      Printf.printf "mvee client time   : %s (overhead %s)\n"
        (Vtime.to_string under.Runner.client_duration)
        (Remon_util.Table.fmt_pct
           (Vtime.to_float_ns under.Runner.client_duration
            /. Vtime.to_float_ns native.Runner.client_duration
           -. 1.));
      Printf.printf "responses          : %d\n" under.Runner.responses)

let run_cmd =
  let name_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name (see `remon list`).")
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N" ~doc:"Print the first N syscall-trace lines.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under an MVEE configuration.")
    Term.(
      const run_workload $ name_arg $ backend_arg $ replicas_arg $ level_arg
      $ latency_arg $ seed_arg $ trace_arg)

let attack_cmd =
  let run backend nreplicas level seed =
    let config = config_of backend nreplicas level seed in
    List.iter
      (fun r -> Format.printf "%a@." Attack.pp_report r)
      (Attack.all_scenarios ~config ())
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Stage the Section 4 attack scenarios.")
    Term.(const run $ backend_arg $ replicas_arg $ level_arg $ seed_arg)

let policy_cmd =
  let run () =
    List.iter
      (fun (lvl, uncond, cond) ->
        Printf.printf "%s\n" (Classification.level_to_string lvl);
        Printf.printf "  unconditional: %s\n"
          (String.concat ", " (List.map Remon_kernel.Sysno.to_string uncond));
        if cond <> [] then
          Printf.printf "  conditional  : %s\n"
            (String.concat ", " (List.map Remon_kernel.Sysno.to_string cond)))
      (Classification.table1 ())
  in
  Cmd.v
    (Cmd.info "policy" ~doc:"Print the Table 1 syscall classification.")
    Term.(const run $ const ())

let () =
  let doc = "ReMon MVEE reproduction: secure and efficient application monitoring" in
  let info = Cmd.info "remon" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; attack_cmd; policy_cmd ]))
