(* End-to-end MVEE tests: transparent I/O replication, input consistency,
   lockstep divergence detection, policy routing, and baseline backends. *)

open Remon_kernel
open Remon_core
open Remon_sim

let sys = Sched.syscall

let expect_int label r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | other ->
    Alcotest.failf "%s: expected Ok_int, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_data label r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | other ->
    Alcotest.failf "%s: expected Ok_data, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let config backend ?(nreplicas = 2) ?(policy = Policy.spatial Classification.Socket_rw_level) () =
  { Mvee.default_config with backend; nreplicas; policy }

(* A program that creates a file, writes to it, reads it back. *)
let file_writer_body path (env : Mvee.env) =
  let flags = { Syscall.o_rdwr with create = true; append = true } in
  let fd = expect_int "open" (sys (Syscall.Open (path, flags))) in
  ignore (expect_int "write" (sys (Syscall.Write (fd, "hello-mvee;"))));
  ignore (sys (Syscall.Fsync fd));
  ignore (expect_int "close" (sys (Syscall.Close fd)));
  ignore env

let read_file k path =
  match Vfs.resolve (Kernel.vfs k) path with
  | Ok node -> (
    match Vfs.read_at node ~offset:0 ~count:1_000_000 with
    | Ok s -> s
    | Error _ -> "")
  | Error _ -> ""

(* I/O transparency: externally observable writes happen exactly once no
   matter how many replicas run, under every backend. *)
let test_io_executed_once backend () =
  let kernel = Kernel.create () in
  let h =
    Mvee.launch kernel (config backend ()) ~name:"writer"
      ~body:(file_writer_body "/tmp/out.txt")
  in
  Kernel.run kernel;
  let o = Mvee.finish h in
  Alcotest.(check string)
    "file written exactly once" "hello-mvee;"
    (read_file kernel "/tmp/out.txt");
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  List.iter
    (fun (_, code) -> Alcotest.(check int) "clean exit" 0 code)
    o.Mvee.exit_codes

(* Input consistency: replicas observe identical results for every
   replicated call, including time queries. *)
let test_consistent_inputs backend () =
  let kernel = Kernel.create () in
  let observed = Array.make 2 [] in
  let body (env : Mvee.env) =
    let t1 =
      match sys Syscall.Gettimeofday with
      | Syscall.Ok_int64 t -> t
      | _ -> Alcotest.fail "gettimeofday"
    in
    Sched.compute (Vtime.us 300);
    let pid = expect_int "getpid" (sys Syscall.Getpid) in
    let t2 =
      match sys Syscall.Gettimeofday with
      | Syscall.Ok_int64 t -> t
      | _ -> Alcotest.fail "gettimeofday2"
    in
    observed.(env.Mvee.variant) <- [ Int64.to_string t1; string_of_int pid; Int64.to_string t2 ]
  in
  let h = Mvee.launch kernel (config backend ()) ~name:"consistency" ~body in
  Kernel.run kernel;
  ignore (Mvee.finish h);
  Alcotest.(check (list string))
    "replicas observed identical inputs" observed.(0) observed.(1)

(* Divergence: a compromised replica issuing a different call is detected
   and the MVEE shuts down before damage spreads. *)
let test_divergence_detected backend () =
  let kernel = Kernel.create () in
  let body (env : Mvee.env) =
    let flags = { Syscall.o_rdwr with create = true } in
    let fd = expect_int "open" (sys (Syscall.Open ("/tmp/d.txt", flags))) in
    let payload = if env.Mvee.variant = 1 then "EVIL-PAYLOAD" else "benign" in
    ignore (sys (Syscall.Write (fd, payload)));
    ignore (sys (Syscall.Close fd))
  in
  let h = Mvee.launch kernel (config backend ()) ~name:"divergent" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  match o.Mvee.verdict with
  | Some (Divergence.Args_mismatch _) | Some (Divergence.Replica_crash _) -> ()
  | Some v -> Alcotest.failf "unexpected verdict kind: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "divergence went undetected"

(* Policy routing: at NONSOCKET_RW, file reads/writes take the IP-MON fast
   path; at monitor-everything they do not. *)
let test_policy_routing () =
  let run policy =
    let kernel = Kernel.create () in
    let body (_ : Mvee.env) =
      let flags = { Syscall.o_rdwr with create = true } in
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/r.txt", flags))) in
      for _ = 1 to 50 do
        ignore (sys (Syscall.Write (fd, "x")));
        ignore (sys (Syscall.Lseek (fd, 0, Syscall.Seek_set)));
        ignore (expect_data "read" (sys (Syscall.Read (fd, 4))))
      done;
      ignore (sys (Syscall.Close fd))
    in
    let h = Mvee.launch kernel (config Mvee.Remon ~policy ()) ~name:"routing" ~body in
    Kernel.run kernel;
    Mvee.finish h
  in
  let relaxed = run (Policy.spatial Classification.Nonsocket_rw_level) in
  let strict = run Policy.monitor_everything in
  Alcotest.(check bool)
    "relaxed policy uses the fast path" true
    (relaxed.Mvee.ipmon_fastpath > 100);
  Alcotest.(check int) "monitor-everything never uses the fast path" 0
    strict.Mvee.ipmon_fastpath;
  Alcotest.(check bool)
    "strict monitors more calls" true
    (strict.Mvee.monitored > relaxed.Mvee.monitored)

(* Performance ordering: the paper's central claim, structurally. *)
let test_overhead_ordering () =
  let dense_body (_ : Mvee.env) =
    for _ = 1 to 200 do
      Sched.compute (Vtime.us 10);
      ignore (sys Syscall.Gettimeofday)
    done
  in
  let duration backend =
    let kernel = Kernel.create () in
    let h = Mvee.launch kernel (config backend ()) ~name:"dense" ~body:dense_body in
    Kernel.run kernel;
    (Mvee.finish h).Mvee.duration
  in
  let native = duration Mvee.Native in
  let remon = duration Mvee.Remon in
  let ghumvee = duration Mvee.Ghumvee_only in
  Alcotest.(check bool) "native fastest" true Vtime.(native < remon);
  Alcotest.(check bool) "remon beats ghumvee-only" true Vtime.(remon < ghumvee)

(* Multi-threaded replicas with contended user-space locks: the
   record/replay agent keeps replicas behaviourally equivalent. *)
let test_record_replay_threads () =
  let kernel = Kernel.create () in
  let outputs = Array.make 2 [] in
  let body (env : Mvee.env) =
    let log entry =
      outputs.(env.Mvee.variant) <- entry :: outputs.(env.Mvee.variant)
    in
    let worker tag () =
      for i = 1 to 5 do
        Sched.compute (Vtime.us (10 + (i * if tag = "a" then 3 else 7)));
        env.Mvee.lock 1;
        log (Printf.sprintf "%s%d" tag i);
        (* a replicated syscall inside the critical section *)
        ignore (sys Syscall.Getpid);
        env.Mvee.unlock 1
      done
    in
    let t1 = env.Mvee.spawn_thread (worker "a") in
    let t2 = env.Mvee.spawn_thread (worker "b") in
    ignore (t1, t2);
    (* wait for both workers: simple join via nanosleep polling *)
    ignore (sys (Syscall.Nanosleep (Vtime.ms 5)))
  in
  let h = Mvee.launch kernel (config Mvee.Remon ()) ~name:"mt" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "verdict: %s" (Divergence.to_string v));
  Alcotest.(check (list string))
    "lock acquisition order identical across replicas" outputs.(0) outputs.(1)

(* Replica count scaling: 4 replicas still produce one output and agree. *)
let test_four_replicas () =
  let kernel = Kernel.create () in
  let h =
    Mvee.launch kernel (config Mvee.Remon ~nreplicas:4 ()) ~name:"four"
      ~body:(file_writer_body "/tmp/four.txt")
  in
  Kernel.run kernel;
  let o = Mvee.finish h in
  Alcotest.(check string) "single write" "hello-mvee;" (read_file kernel "/tmp/four.txt");
  Alcotest.(check int) "all four exited" 4 (List.length o.Mvee.exit_codes)

let tc = Alcotest.test_case

let () =
  Alcotest.run "mvee"
    [
      ( "io-transparency",
        [
          tc "remon writes once" `Quick (test_io_executed_once Mvee.Remon);
          tc "ghumvee writes once" `Quick (test_io_executed_once Mvee.Ghumvee_only);
          tc "varan writes once" `Quick (test_io_executed_once Mvee.Varan);
          tc "native writes once" `Quick (test_io_executed_once Mvee.Native);
        ] );
      ( "consistency",
        [
          tc "remon" `Quick (test_consistent_inputs Mvee.Remon);
          tc "ghumvee" `Quick (test_consistent_inputs Mvee.Ghumvee_only);
          tc "varan" `Quick (test_consistent_inputs Mvee.Varan);
        ] );
      ( "divergence",
        [
          tc "remon detects" `Quick (test_divergence_detected Mvee.Remon);
          tc "ghumvee detects" `Quick (test_divergence_detected Mvee.Ghumvee_only);
          tc "varan detects" `Quick (test_divergence_detected Mvee.Varan);
        ] );
      ( "policy",
        [
          tc "routing by level" `Quick test_policy_routing;
          tc "overhead ordering" `Quick test_overhead_ordering;
        ] );
      ( "threads",
        [ tc "record/replay ordering" `Quick test_record_replay_threads ] );
      ("scaling", [ tc "four replicas" `Quick test_four_replicas ]);
    ]
