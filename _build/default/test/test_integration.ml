(* Cross-cutting integration tests: temporal policy end-to-end, the VARAN
   fd-replication path, multi-threaded servers under many replicas,
   single-replica monitoring, determinism of whole runs, and memory
   pressure scaling. *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads

let sys = Sched.syscall

(* Temporal exemption must never route replicas asymmetrically: a dense
   2-replica run with aggressive temporal policy completes cleanly and
   actually exempts calls. *)
let test_temporal_end_to_end () =
  let policy =
    Policy.with_temporal
      (Policy.spatial Classification.Base_level)
      { Policy.min_approvals = 8; exempt_probability = 0.7; window_ns = Vtime.s 1 }
  in
  let profile =
    Profile.make ~name:"temporal-e2e" ~threads:2 ~density_hz:50_000. ~calls:1500
      ~mix:Profile.mix_file_rw ~description:"temporal e2e" ()
  in
  let config = { (Runner.cfg_remon Classification.Base_level) with Mvee.policy } in
  let r = Runner.run_profile profile config in
  Alcotest.(check bool) "no divergence" true (r.Runner.outcome.Mvee.verdict = None);
  (* at BASE, file reads/writes are only exempt via the temporal policy;
     mix_file_rw has few BASE-eligible calls, so fast-path traffic beyond
     ~15% of calls must come from temporal exemptions *)
  let o = r.Runner.outcome in
  Alcotest.(check bool)
    (Printf.sprintf "temporal exemptions happened (fast=%d mon=%d)"
       o.Mvee.ipmon_fastpath o.Mvee.monitored)
    true
    (o.Mvee.ipmon_fastpath > o.Mvee.syscalls / 8)

(* VARAN replicates fd-lifecycle calls in-process: a slave's open must not
   touch the host filesystem twice, and its stub fds must work for
   subsequent replicated I/O. *)
let test_varan_fd_replication () =
  let kernel = Kernel.create () in
  let read_back = Array.make 2 "" in
  let body (env : Mvee.env) =
    let fd =
      match sys (Syscall.Open ("/tmp/varanfd.txt", { Syscall.o_rdwr with create = true })) with
      | Syscall.Ok_int fd -> fd
      | r -> Alcotest.failf "open: %s" (Format.asprintf "%a" Syscall.pp_result r)
    in
    ignore (sys (Syscall.Write (fd, "once-only ")));
    ignore (sys (Syscall.Pwrite64 (fd, "and-again", 10)));
    (match sys (Syscall.Pread64 (fd, 32, 0)) with
    | Syscall.Ok_data s -> read_back.(env.Mvee.variant) <- s
    | _ -> ());
    ignore (sys (Syscall.Close fd))
  in
  let h =
    Mvee.launch kernel
      { Mvee.default_config with Mvee.backend = Mvee.Varan }
      ~name:"varanfd" ~body
  in
  Kernel.run kernel;
  let o = Mvee.finish h in
  Alcotest.(check bool) "no divergence" true (o.Mvee.verdict = None);
  Alcotest.(check string) "replicas read identical data" read_back.(0) read_back.(1);
  match Vfs.resolve (Kernel.vfs kernel) "/tmp/varanfd.txt" with
  | Ok node ->
    Alcotest.(check int) "file written once" 19 (Vfs.file_size node)
  | Error _ -> Alcotest.fail "file missing"

(* Thread-per-connection server under 4 replicas at a restrictive policy:
   every conn-handler thread gets its own lockstep rendezvous stream. *)
let test_threaded_server_many_replicas () =
  let server = Servers.apache_ab in
  let client = Clients.ab ~concurrency:4 ~total_requests:16 () in
  let config =
    { (Runner.cfg_remon ~nreplicas:4 Classification.Nonsocket_rw_level) with
      Mvee.watchdog_ns = Vtime.s 60 }
  in
  let r = Runner.run_server_bench ~latency:(Vtime.us 200) ~server ~client config in
  Alcotest.(check int) "all requests served" 16 r.Runner.responses

(* GHUMVEE supervising a single replica is the degenerate but valid case
   (plain syscall sandboxing). *)
let test_single_replica_monitoring () =
  let kernel = Kernel.create () in
  let config =
    {
      Mvee.default_config with
      Mvee.backend = Mvee.Ghumvee_only;
      nreplicas = 1;
      policy = Policy.monitor_everything;
    }
  in
  let h =
    Mvee.launch kernel config ~name:"solo" ~body:(fun _ ->
        let fd =
          match sys (Syscall.Open ("/tmp/solo.txt", { Syscall.o_rdwr with create = true })) with
          | Syscall.Ok_int fd -> fd
          | _ -> Alcotest.fail "open"
        in
        ignore (sys (Syscall.Write (fd, "solo")));
        ignore (sys (Syscall.Close fd)))
  in
  Kernel.run kernel;
  let o = Mvee.finish h in
  Alcotest.(check bool) "clean" true (o.Mvee.verdict = None);
  Alcotest.(check bool) "calls were monitored" true (o.Mvee.monitored > 0)

(* Whole runs are deterministic: the same configuration and seed produce
   bit-identical durations and counters. *)
let test_run_determinism () =
  let profile =
    Profile.make ~name:"determinism" ~threads:4 ~density_hz:60_000. ~calls:800
      ~mix:Profile.mix_file_rw ~description:"determinism" ()
  in
  let run () =
    let r = Runner.run_profile profile (Runner.cfg_remon Classification.Nonsocket_rw_level) in
    ( r.Runner.duration,
      r.Runner.outcome.Mvee.syscalls,
      r.Runner.outcome.Mvee.ipmon_fastpath,
      r.Runner.outcome.Mvee.rb_records )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical durations and counters" true (a = b)

(* Different seeds change layouts (ASLR) but never behaviour. *)
let test_seed_invariance () =
  let profile =
    Profile.make ~name:"seeds" ~threads:2 ~density_hz:30_000. ~calls:400
      ~mix:Profile.mix_file_ro ~description:"seed invariance" ()
  in
  List.iter
    (fun seed ->
      let r =
        Runner.run_profile profile
          (Runner.cfg_remon ~seed Classification.Nonsocket_rw_level)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d clean" seed)
        true
        (r.Runner.outcome.Mvee.verdict = None))
    [ 1; 7; 99; 12345 ]

(* Memory pressure scales with the replica count. *)
let test_mem_pressure_scaling () =
  let profile =
    Profile.make ~name:"mem" ~threads:2 ~density_hz:1_000. ~calls:200
      ~mem_pressure:0.08 ~mix:Profile.mix_compute ~description:"mem pressure" ()
  in
  let dur n =
    let r =
      Runner.run_profile profile (Runner.cfg_remon ~nreplicas:n Classification.Socket_rw_level)
    in
    Vtime.to_float_ns r.Runner.duration
  in
  let native =
    Vtime.to_float_ns (Runner.run_profile profile (Runner.cfg_native ())).Runner.duration
  in
  let two = dur 2 and four = dur 4 in
  Alcotest.(check bool) "2 replicas slower than native" true (two > native *. 1.05);
  Alcotest.(check bool) "4 replicas slower than 2" true (four > two *. 1.05)

(* Seven replicas on a profile workload complete in lockstep. *)
let test_seven_replicas_profile () =
  let profile =
    Profile.make ~name:"seven" ~threads:2 ~density_hz:20_000. ~calls:300
      ~mix:Profile.mix_file_rw ~description:"7 replicas" ()
  in
  let r =
    Runner.run_profile profile
      (Runner.cfg_remon ~nreplicas:7 Classification.Nonsocket_rw_level)
  in
  Alcotest.(check bool) "clean" true (r.Runner.outcome.Mvee.verdict = None);
  Alcotest.(check int) "all seven exited" 7
    (List.length r.Runner.outcome.Mvee.exit_codes)

(* RB migration under live server load. *)
let test_migration_under_load () =
  let server = Servers.redis in
  let client = Clients.wrk ~concurrency:4 ~total_requests:80 () in
  let config =
    { (Runner.cfg_remon Classification.Socket_rw_level) with
      Mvee.rb_migration_interval = Some (Vtime.ms 1) }
  in
  let r = Runner.run_server_bench ~latency:(Vtime.us 100) ~server ~client config in
  Alcotest.(check int) "all served across migrations" 80 r.Runner.responses

(* The spin/futex and condvar ablation modes must not change behaviour,
   only timing. *)
let test_ablation_modes_behave () =
  let profile =
    Profile.make ~name:"modes" ~threads:2 ~density_hz:40_000. ~calls:500
      ~mix:Profile.mix_file_rw ~description:"ablation modes" ()
  in
  List.iter
    (fun mode ->
      let config =
        { (Runner.cfg_remon Classification.Nonsocket_rw_level) with
          Mvee.mode_override = Some mode }
      in
      let r = Runner.run_profile profile config in
      Alcotest.(check bool) "clean" true (r.Runner.outcome.Mvee.verdict = None))
    [
      { Context.remon_mode with Context.per_call_condvar = false };
      { Context.remon_mode with Context.slave_wait = Context.Wait_spin_only };
      { Context.remon_mode with Context.slave_wait = Context.Wait_futex_only };
    ]

let tc = Alcotest.test_case

let () =
  Alcotest.run "integration"
    [
      ( "policies",
        [
          tc "temporal end-to-end" `Quick test_temporal_end_to_end;
          tc "ablation modes behave" `Quick test_ablation_modes_behave;
        ] );
      ( "backends",
        [
          tc "varan fd replication" `Quick test_varan_fd_replication;
          tc "single-replica monitoring" `Quick test_single_replica_monitoring;
        ] );
      ( "scale",
        [
          tc "threaded server x4 replicas" `Quick test_threaded_server_many_replicas;
          tc "seven replicas" `Quick test_seven_replicas_profile;
          tc "memory pressure scaling" `Quick test_mem_pressure_scaling;
        ] );
      ( "determinism",
        [
          tc "bit-identical reruns" `Quick test_run_determinism;
          tc "seed invariance" `Quick test_seed_invariance;
        ] );
      ( "extensions",
        [ tc "rb migration under load" `Quick test_migration_under_load ] );
    ]
