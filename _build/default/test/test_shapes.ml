(* Reproduction-shape regression tests: the qualitative claims of the
   paper's evaluation, locked in as assertions so a change that silently
   breaks the reproduction fails CI rather than just producing different
   bench output.

   Tolerances are generous — these guard the *shape* (orderings, drop
   points, crossovers), not exact values. *)

open Remon_core
open Remon_sim
open Remon_workloads

let norm profile config = Runner.normalized_time profile config

let find_parsec name =
  (List.find (fun (e : Parsec.entry) -> e.bench = name) Parsec.all).profile

let find_splash name =
  (List.find (fun (e : Splash.entry) -> e.bench = name) Splash.all).profile

let find_phoronix name =
  List.find (fun (e : Phoronix.entry) -> e.bench = name) Phoronix.all

(* Figure 3's headline: IP-MON at NONSOCKET_RW cuts dedup's and
   water_spatial's CP overhead by more than half. *)
let test_fig3_dense_anchor_shapes () =
  List.iter
    (fun (label, profile, paper_cp) ->
      let cp = norm profile (Runner.cfg_ghumvee ()) in
      let ip = norm profile (Runner.cfg_remon Classification.Nonsocket_rw_level) in
      Alcotest.(check bool)
        (Printf.sprintf "%s CP overhead in the paper's ballpark (%.2f vs %.2f)"
           label cp paper_cp)
        true
        (cp > 1. +. ((paper_cp -. 1.) /. 2.) && cp < 1. +. ((paper_cp -. 1.) *. 2.));
      Alcotest.(check bool)
        (Printf.sprintf "%s IP-MON cuts overhead by >2x (%.2f -> %.2f)" label cp ip)
        true
        (ip -. 1. < (cp -. 1.) /. 2.))
    [
      ("dedup", find_parsec "dedup", 3.53);
      ("water_spatial", find_splash "water_spatial", 4.20);
    ]

(* Figure 4: each benchmark's normalized time is monotonically
   non-increasing across the cumulative levels (within noise), and the
   drop points land where the paper's do. *)
let test_fig4_staircase_monotone () =
  List.iter
    (fun name ->
      let e = find_phoronix name in
      let series =
        List.map (fun lvl -> norm e.Phoronix.profile (Runner.cfg_remon lvl)) Phoronix.levels
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> b <= a +. 0.02 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s staircase non-increasing: %s" name
           (String.concat " " (List.map (Printf.sprintf "%.2f") series)))
        true (monotone series))
    [ "compress-gzip"; "phpbench"; "unpack-linux"; "network-loopback" ]

let test_fig4_drop_points () =
  (* phpbench drops hard at BASE (time queries); loopback only at the
     SOCKET levels *)
  let php = find_phoronix "phpbench" in
  let php_cp = norm php.Phoronix.profile (Runner.cfg_ghumvee ()) in
  let php_base = norm php.Phoronix.profile (Runner.cfg_remon Classification.Base_level) in
  Alcotest.(check bool) "phpbench: BASE already removes >30% of the overhead" true
    (php_base -. 1. < (php_cp -. 1.) *. 0.7);
  let lb = find_phoronix "network-loopback" in
  let lb_nsrw = norm lb.Phoronix.profile (Runner.cfg_remon Classification.Nonsocket_rw_level) in
  let lb_srw = norm lb.Phoronix.profile (Runner.cfg_remon Classification.Socket_rw_level) in
  Alcotest.(check bool) "loopback: NONSOCKET levels keep most of the overhead" true
    (lb_nsrw > 5.);
  Alcotest.(check bool) "loopback: SOCKET_RW removes it" true (lb_srw < 3.)

(* Figure 5's two headline shapes. *)
let test_fig5_latency_hiding () =
  let server = Servers.nginx_wrk in
  let client = Clients.wrk ~concurrency:16 ~total_requests:320 () in
  let config = Runner.cfg_remon Classification.Socket_rw_level in
  let fast = Runner.server_overhead ~latency:(Vtime.us 100) ~server ~client config in
  let slow = Runner.server_overhead ~latency:(Vtime.ms 2) ~server ~client config in
  Alcotest.(check bool)
    (Printf.sprintf "realistic-latency overhead under 3.5%% (%.3f)" slow)
    true (slow < 0.035);
  Alcotest.(check bool) "latency hides the overhead" true (slow < fast /. 3.)

let test_fig5_ipmon_beats_no_ipmon () =
  let server = Servers.redis in
  let client = Clients.wrk ~concurrency:16 ~total_requests:320 () in
  let latency = Vtime.us 100 in
  let no_ipmon = Runner.server_overhead ~latency ~server ~client (Runner.cfg_ghumvee ()) in
  let with_ipmon =
    Runner.server_overhead ~latency ~server ~client
      (Runner.cfg_remon Classification.Socket_rw_level)
  in
  Alcotest.(check bool)
    (Printf.sprintf "IP-MON cuts server overhead >3x (%.2f -> %.2f)" no_ipmon with_ipmon)
    true
    (with_ipmon < no_ipmon /. 3.)

(* Table 2 positioning: VARAN <= ReMon <= GHUMVEE on syscall-dense work. *)
let test_backend_total_order () =
  let profile =
    Profile.make ~name:"order-check" ~threads:4 ~density_hz:100_000. ~calls:2000
      ~mix:Profile.mix_file_rw ~description:"ordering" ()
  in
  let v = norm profile (Runner.cfg_varan ()) in
  let r = norm profile (Runner.cfg_remon Classification.Nonsocket_rw_level) in
  let g = norm profile (Runner.cfg_ghumvee ()) in
  Alcotest.(check bool)
    (Printf.sprintf "varan(%.2f) <= remon(%.2f) <= ghumvee(%.2f)" v r g)
    true
    (v <= r +. 0.02 && r < g)

(* The geomean headlines, within generous tolerance. *)
let test_geomean_headlines () =
  let parsec_cp =
    Remon_util.Stats.geomean
      (List.map (fun (e : Parsec.entry) -> norm e.profile (Runner.cfg_ghumvee ())) Parsec.all)
  in
  let parsec_ip =
    Remon_util.Stats.geomean
      (List.map
         (fun (e : Parsec.entry) ->
           norm e.profile (Runner.cfg_remon Classification.Nonsocket_rw_level))
         Parsec.all)
  in
  Alcotest.(check bool)
    (Printf.sprintf "PARSEC CP geomean near paper's 1.22 (%.3f)" parsec_cp)
    true
    (parsec_cp > 1.12 && parsec_cp < 1.35);
  Alcotest.(check bool)
    (Printf.sprintf "PARSEC IP-MON geomean near paper's 1.11 (%.3f)" parsec_ip)
    true
    (parsec_ip > 1.02 && parsec_ip < 1.18);
  Alcotest.(check bool) "IP-MON improves the geomean" true (parsec_ip < parsec_cp)

(* Table 1 structure counts, as printed by the paper. *)
let test_table1_counts () =
  let rows = Classification.table1 () in
  let count lvl =
    let _, u, c = List.find (fun (l, _, _) -> l = lvl) rows in
    (List.length u, List.length c)
  in
  (* the paper's own calls are all present; our kernel adds more at the
     same levels, so check lower bounds and conditional-set exactness *)
  let u, c = count Classification.Base_level in
  Alcotest.(check bool) "BASE unconditional >= 21" true (u >= 21);
  Alcotest.(check int) "BASE conditional = 3 (futex/ioctl/fcntl)" 3 c;
  let _, c = count Classification.Nonsocket_ro_level in
  Alcotest.(check bool) "read family conditional >= 6" true (c >= 6);
  let u, _ = count Classification.Socket_rw_level in
  Alcotest.(check int) "SOCKET_RW unconditional = 7" 7 u

let tc = Alcotest.test_case

let () =
  Alcotest.run "shapes"
    [
      ( "fig3",
        [
          tc "dense anchors + >2x cut" `Quick test_fig3_dense_anchor_shapes;
          tc "geomean headlines" `Quick test_geomean_headlines;
        ] );
      ( "fig4",
        [
          tc "staircase monotone" `Quick test_fig4_staircase_monotone;
          tc "drop points" `Quick test_fig4_drop_points;
        ] );
      ( "fig5",
        [
          tc "latency hiding + <3.5% realistic" `Quick test_fig5_latency_hiding;
          tc "IP-MON beats no-IP-MON" `Quick test_fig5_ipmon_beats_no_ipmon;
        ] );
      ( "positioning",
        [
          tc "varan <= remon <= ghumvee" `Quick test_backend_total_order;
          tc "table 1 structure" `Quick test_table1_counts;
        ] );
    ]
