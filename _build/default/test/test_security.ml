(* Security tests: every mechanism of the paper's Section 4 analysis has an
   attack that must be contained, plus the negative results the paper
   predicts for weaker configurations (VARAN detects but does not prevent;
   undiversified replicas cannot diverge). *)

open Remon_core

let cfg backend =
  { Mvee.default_config with Mvee.backend; nreplicas = 2 }

(* Divergent syscall under ReMon: prevented (no effect) and detected. *)
let test_divergent_remon () =
  let r = Attack.divergent_syscall ~config:(cfg Mvee.Remon) () in
  Alcotest.(check bool) "attack had no external effect" false r.Attack.attack_effect;
  Alcotest.(check bool) "divergence detected" true (r.Attack.detected <> None)

(* Same attack when the compromised replica is a slave. *)
let test_divergent_slave_remon () =
  let r = Attack.divergent_syscall ~config:(cfg Mvee.Remon) ~compromised:1 () in
  Alcotest.(check bool) "attack had no external effect" false r.Attack.attack_effect;
  Alcotest.(check bool) "divergence detected" true (r.Attack.detected <> None)

(* Under GHUMVEE alone: also prevented. *)
let test_divergent_ghumvee () =
  let r = Attack.divergent_syscall ~config:(cfg Mvee.Ghumvee_only) () in
  Alcotest.(check bool) "prevented" false r.Attack.attack_effect;
  Alcotest.(check bool) "detected" true (r.Attack.detected <> None)

(* Under VARAN: the master runs ahead, so the malicious call *executes*
   before the slave's cross-check catches it — detection without
   prevention, exactly the weakness the paper describes. *)
let test_divergent_varan_detects_but_does_not_prevent () =
  let r = Attack.divergent_syscall ~config:(cfg Mvee.Varan) () in
  Alcotest.(check bool) "attack DID take effect (master ran ahead)" true
    r.Attack.attack_effect;
  Alcotest.(check bool) "but was detected afterwards" true (r.Attack.detected <> None)

(* Forged authorization tokens never enable unmonitored execution. *)
let test_forged_token () =
  let r = Attack.forged_token ~config:(cfg Mvee.Remon) () in
  Alcotest.(check bool) "no unmonitored execution" false r.Attack.attack_effect;
  Alcotest.(check string) "verifier rejected the token"
    "IK-B verifier rejected the forged token" r.Attack.notes

(* GHUMVEE filters the maps file: the RB cannot be located through it. *)
let test_rb_hidden_from_maps () =
  let r = Attack.rb_discovery ~config:(cfg Mvee.Remon) () in
  Alcotest.(check bool) "RB not visible in /proc/self/maps" false
    r.Attack.attack_effect;
  Alcotest.(check bool) "benign probe is not flagged" true (r.Attack.detected = None)

(* Without GHUMVEE (VARAN), the maps file is not filtered: the shared
   buffer region is visible — one reason VARAN's IP monitors are easier to
   attack. *)
let test_rb_visible_without_ghumvee () =
  let r = Attack.rb_discovery ~config:(cfg Mvee.Varan) () in
  Alcotest.(check bool) "RB region visible without maps filtering" true
    r.Attack.attack_effect

(* Blind guessing is hopeless at 24+ bits of placement entropy. *)
let test_rb_guessing () =
  let r = Attack.rb_guessing ~config:(cfg Mvee.Remon) ~probes:20_000 () in
  Alcotest.(check bool) "no probe found the RB" false r.Attack.attack_effect

(* Address-dependent payloads: with DCL the gadget address is valid in at
   most one replica, so the attack produces divergence and is killed. *)
let test_payload_spray_dcl () =
  let r = Attack.payload_spray ~config:(cfg Mvee.Remon) () in
  Alcotest.(check bool) "payload contained" false r.Attack.attack_effect;
  Alcotest.(check bool) "crash/divergence detected" true (r.Attack.detected <> None)

(* Negative control: with diversity disabled every replica has the same
   layout, the payload works in all of them consistently, and the MVEE has
   nothing to observe — the known limitation of consistent compromise. *)
let test_payload_spray_no_diversity () =
  let config =
    {
      (cfg Mvee.Remon) with
      Mvee.diversity = { Diversity.default with Diversity.aslr = false; dcl = false };
    }
  in
  let r = Attack.payload_spray ~config () in
  Alcotest.(check bool) "payload succeeded everywhere (no diversity)" true
    r.Attack.attack_effect;
  Alcotest.(check bool) "and nothing diverged" true (r.Attack.detected = None)

(* Shared-memory policy: ordinary writable SysV segments are rejected
   (bi-directional channels); the MVEE's own RB keys are allowed. *)
let test_shm_rejection () =
  let kernel = Remon_kernel.Kernel.create () in
  let attempted = ref None in
  let body (_ : Mvee.env) =
    attempted :=
      Some
        (Remon_kernel.Sched.syscall
           (Remon_kernel.Syscall.Shmget { key = 1234; size = 4096; create = true }))
  in
  let h = Mvee.launch kernel (cfg Mvee.Remon) ~name:"shm-attack" ~body in
  Remon_kernel.Kernel.run kernel;
  ignore (Mvee.finish h);
  match !attempted with
  | Some (Remon_kernel.Syscall.Error Remon_kernel.Errno.EACCES) -> ()
  | Some r ->
    Alcotest.failf "expected EACCES, got %s"
      (Format.asprintf "%a" Remon_kernel.Syscall.pp_result r)
  | None -> Alcotest.fail "shmget never completed"

(* Diversity invariants. *)
let test_dcl_disjoint () =
  let kernel = Remon_kernel.Kernel.create () in
  let h =
    Mvee.launch kernel
      { (cfg Mvee.Remon) with Mvee.nreplicas = 4 }
      ~name:"dcl" ~body:(fun _ -> ())
  in
  Remon_kernel.Kernel.run kernel;
  ignore (Mvee.finish h);
  Alcotest.(check bool) "code ranges pairwise disjoint" true
    (Diversity.code_ranges_disjoint (Array.to_list h.Mvee.group.Context.replicas))

let test_aslr_distinct_layouts () =
  let kernel = Remon_kernel.Kernel.create () in
  let h = Mvee.launch kernel (cfg Mvee.Remon) ~name:"aslr" ~body:(fun _ -> ()) in
  Remon_kernel.Kernel.run kernel;
  ignore (Mvee.finish h);
  let bases =
    Array.to_list h.Mvee.group.Context.replicas
    |> List.filter_map Diversity.heap_base
  in
  Alcotest.(check int) "all replicas have heaps" 2 (List.length bases);
  Alcotest.(check bool) "heap bases differ across replicas" true
    (List.sort_uniq compare bases |> List.length = 2)

let tc = Alcotest.test_case

let () =
  Alcotest.run "security"
    [
      ( "divergence-containment",
        [
          tc "remon: prevented+detected (master)" `Quick test_divergent_remon;
          tc "remon: prevented+detected (slave)" `Quick test_divergent_slave_remon;
          tc "ghumvee: prevented+detected" `Quick test_divergent_ghumvee;
          tc "varan: detected but NOT prevented" `Quick
            test_divergent_varan_detects_but_does_not_prevent;
        ] );
      ( "token",
        [ tc "forged token rejected" `Quick test_forged_token ] );
      ( "rb-secrecy",
        [
          tc "maps filtered under remon" `Quick test_rb_hidden_from_maps;
          tc "maps unfiltered under varan" `Quick test_rb_visible_without_ghumvee;
          tc "blind guessing fails" `Quick test_rb_guessing;
        ] );
      ( "diversity",
        [
          tc "payload contained under DCL" `Quick test_payload_spray_dcl;
          tc "payload wins without diversity" `Quick test_payload_spray_no_diversity;
          tc "DCL code ranges disjoint" `Quick test_dcl_disjoint;
          tc "ASLR layouts differ" `Quick test_aslr_distinct_layouts;
        ] );
      ("shared-memory", [ tc "writable shm rejected" `Quick test_shm_rejection ]);
    ]
