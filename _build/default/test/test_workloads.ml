(* Workload library tests: profile determinism across replicas, server
   architectures under each backend, client measurement sanity, the
   registry, and the two-anchor calibration fit. *)

open Remon_core
open Remon_sim
open Remon_workloads

(* Every mix archetype must produce identical syscall sequences in every
   replica: run it under full monitoring, where any divergence is fatal. *)
let test_mix_deterministic mix_name mix () =
  let profile =
    Profile.make ~name:("det." ^ mix_name) ~threads:3 ~density_hz:40_000.
      ~calls:400 ~mix ~description:"determinism probe" ()
  in
  let config =
    {
      Mvee.default_config with
      Mvee.backend = Mvee.Ghumvee_only;
      policy = Policy.monitor_everything;
      nreplicas = 2;
    }
  in
  let r = Runner.run_profile profile config in
  Alcotest.(check bool) "completed without divergence" true
    (r.Runner.outcome.Mvee.verdict = None)

let test_profile_density_approx () =
  (* the native run's call rate should approximate the requested density *)
  let profile =
    Profile.make ~name:"density-probe" ~threads:2 ~density_hz:20_000. ~calls:2000
      ~jitter:0. ~mix:Profile.mix_compute ~description:"density probe" ()
  in
  let r = Runner.run_profile profile (Runner.cfg_native ()) in
  let calls = r.Runner.outcome.Mvee.syscalls in
  let secs = Vtime.to_float_s r.Runner.duration in
  let rate_per_thread = float_of_int calls /. secs /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f within 25%% of 20k" rate_per_thread)
    true
    (rate_per_thread > 15_000. && rate_per_thread < 25_000.)

let test_server_archs () =
  (* each server architecture serves a small load under ReMon *)
  List.iter
    (fun (server : Servers.spec) ->
      let client = Clients.ab ~concurrency:4 ~total_requests:24 () in
      let r =
        Runner.run_server_bench ~latency:(Vtime.us 200) ~server ~client
          (Runner.cfg_remon Classification.Socket_rw_level)
      in
      Alcotest.(check int)
        (server.Servers.name ^ " all responses")
        24 r.Runner.responses)
    [ Servers.nginx_wrk; Servers.thttpd_ab; Servers.apache_ab ]

let test_server_under_all_backends () =
  let server = Servers.redis in
  let client = Clients.wrk ~concurrency:4 ~total_requests:60 () in
  List.iter
    (fun config ->
      let r = Runner.run_server_bench ~latency:(Vtime.us 100) ~server ~client config in
      Alcotest.(check int) "responses" 60 r.Runner.responses)
    [
      Runner.cfg_native ();
      Runner.cfg_ghumvee ();
      Runner.cfg_varan ();
      Runner.cfg_remon Classification.Socket_rw_level;
      Runner.cfg_remon ~nreplicas:5 Classification.Socket_rw_level;
    ]

let test_latency_hiding_shape () =
  (* the defining server result: overhead decreases as latency grows *)
  let server = Servers.memcached in
  let client = Clients.wrk ~concurrency:8 ~total_requests:160 () in
  let ov latency =
    Runner.server_overhead ~latency ~server ~client (Runner.cfg_ghumvee ())
  in
  let fast = ov (Vtime.us 100) in
  let slow = ov (Vtime.ms 2) in
  Alcotest.(check bool)
    (Printf.sprintf "overhead shrinks with latency (%.3f -> %.3f)" fast slow)
    true (slow < fast /. 4.)

let test_backend_ordering_dense () =
  (* remon sits strictly between native and ghumvee on dense workloads *)
  let profile =
    Profile.make ~name:"ordering" ~threads:4 ~density_hz:100_000. ~calls:1500
      ~mix:Profile.mix_file_rw ~description:"ordering probe" ()
  in
  let cp = Runner.normalized_time profile (Runner.cfg_ghumvee ()) in
  let hybrid =
    Runner.normalized_time profile (Runner.cfg_remon Classification.Nonsocket_rw_level)
  in
  let varan = Runner.normalized_time profile (Runner.cfg_varan ()) in
  Alcotest.(check bool) "hybrid beats CP" true (hybrid < cp);
  Alcotest.(check bool) "hybrid has overhead" true (hybrid > 1.001);
  Alcotest.(check bool) "varan <= hybrid (no lockstep at all)" true
    (varan <= hybrid +. 0.01)

let test_registry () =
  let names = Registry.names in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "parsec.dedup registered" true
    (Registry.find "parsec.dedup" <> None);
  Alcotest.(check bool) "server workloads registered" true
    (Registry.find "server.nginx-wrk" <> None);
  Alcotest.(check bool) "unknown name" true (Registry.find "nope" = None);
  Alcotest.(check bool) "9 servers + 33 profiles + 19 spec" true
    (List.length names >= 60)

let test_fit_properties () =
  (* the two-anchor fit: density and memory pressure are non-negative, and
     higher no-IPMON anchors give higher densities *)
  let d1, m1 = Profile.fit ~paper_no:1.1 ~paper_ip:1.02 ~mix:Profile.mix_compute in
  let d2, m2 = Profile.fit ~paper_no:2.0 ~paper_ip:1.1 ~mix:Profile.mix_compute in
  Alcotest.(check bool) "densities positive" true (d1 >= 300. && d2 >= 300.);
  Alcotest.(check bool) "pressure non-negative" true (m1 >= 0. && m2 >= 0.);
  Alcotest.(check bool) "monotone in overhead" true (d2 > d1);
  (* when the IP-MON anchor exceeds the no-IPMON anchor, everything must be
     attributed to memory pressure *)
  let d3, m3 = Profile.fit ~paper_no:1.04 ~paper_ip:1.11 ~mix:Profile.mix_compute in
  Alcotest.(check bool) "inverted anchors: pressure-dominated" true
    (d3 = 300. && m3 > 0.05)

let test_monitored_fraction () =
  Alcotest.(check (float 1e-9)) "pure compute mix has no monitored calls" 0.
    (Profile.monitored_fraction Profile.mix_compute);
  Alcotest.(check bool) "unpack mix is monitored-heavy" true
    (Profile.monitored_fraction Profile.mix_unpack > 0.3)

let test_suite_sizes () =
  Alcotest.(check int) "12 PARSEC benchmarks (canneal excluded)" 12
    (List.length Parsec.all);
  Alcotest.(check int) "13 SPLASH benchmarks (cholesky excluded)" 13
    (List.length Splash.all);
  Alcotest.(check int) "8 Phoronix benchmarks" 8 (List.length Phoronix.all);
  Alcotest.(check int) "19 SPEC benchmarks" 19 (List.length Spec.all);
  List.iter
    (fun (e : Phoronix.entry) ->
      Alcotest.(check int)
        (e.Phoronix.bench ^ " has 6 paper bars")
        6
        (Array.length e.Phoronix.paper))
    Phoronix.all

let prop_profiles_run_natively =
  QCheck2.Test.make ~name:"every registered profile completes natively" ~count:15
    QCheck2.Gen.(int_range 0 200)
    (fun idx ->
      let profiles =
        List.filter_map
          (function _, Registry.Profile_workload p -> Some p | _ -> None)
          Registry.all
      in
      let p = List.nth profiles (idx mod List.length profiles) in
      (* shrink the run so the property stays fast *)
      let p = { p with Profile.total_calls_per_thread = 60 } in
      let r = Runner.run_profile p (Runner.cfg_native ()) in
      Vtime.compare r.Runner.duration Vtime.zero > 0)

let tc = Alcotest.test_case

let () =
  Alcotest.run "workloads"
    [
      ( "determinism",
        [
          tc "mix_compute" `Quick (test_mix_deterministic "compute" Profile.mix_compute);
          tc "mix_file_ro" `Quick (test_mix_deterministic "file_ro" Profile.mix_file_ro);
          tc "mix_file_rw" `Quick (test_mix_deterministic "file_rw" Profile.mix_file_rw);
          tc "mix_pipe" `Quick (test_mix_deterministic "pipe" Profile.mix_pipe);
          tc "mix_sock" `Quick (test_mix_deterministic "sock" Profile.mix_sock);
          tc "mix_sync" `Quick (test_mix_deterministic "sync" Profile.mix_sync);
          tc "mix_unpack" `Quick (test_mix_deterministic "unpack" Profile.mix_unpack);
        ] );
      ( "profiles",
        [
          tc "density approximation" `Quick test_profile_density_approx;
          tc "fit properties" `Quick test_fit_properties;
          tc "monitored fraction" `Quick test_monitored_fraction;
          tc "suite sizes" `Quick test_suite_sizes;
          QCheck_alcotest.to_alcotest prop_profiles_run_natively;
        ] );
      ( "servers",
        [
          tc "architectures serve load" `Quick test_server_archs;
          tc "all backends serve load" `Quick test_server_under_all_backends;
          tc "latency hiding" `Quick test_latency_hiding_shape;
          tc "backend ordering" `Quick test_backend_ordering_dense;
        ] );
      ("registry", [ tc "lookup + uniqueness" `Quick test_registry ]);
    ]
