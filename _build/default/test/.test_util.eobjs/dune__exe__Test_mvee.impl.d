test/test_mvee.ml: Alcotest Array Classification Divergence Format Int64 Kernel List Mvee Policy Printf Remon_core Remon_kernel Remon_sim Sched Syscall Vfs Vtime
