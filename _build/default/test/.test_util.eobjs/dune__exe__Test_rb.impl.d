test/test_rb.ml: Alcotest Epoll_map File_map Int64 List Proc QCheck2 QCheck_alcotest Record_log Remon_core Remon_kernel Replication_buffer String Syscall
