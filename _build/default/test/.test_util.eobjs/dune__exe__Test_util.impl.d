test/test_util.ml: Alcotest Array List QCheck2 QCheck_alcotest Remon_util Rng Stats String Table
