test/test_security.ml: Alcotest Array Attack Context Diversity Format List Mvee Remon_core Remon_kernel
