test/test_kernel2.ml: Alcotest Errno Format Int64 Kernel List Proc QCheck2 QCheck_alcotest Remon_kernel Remon_sim Remon_util Result Sched Shm Sigdefs Syscall Vfs Vm Vtime
