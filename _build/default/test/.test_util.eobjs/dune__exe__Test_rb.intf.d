test/test_rb.mli:
