test/test_sim.ml: Alcotest Cost_model Event_queue List QCheck2 QCheck_alcotest Remon_sim Vtime
