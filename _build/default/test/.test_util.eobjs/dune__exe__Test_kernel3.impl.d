test/test_kernel3.ml: Alcotest Array Classification Errno Format Int64 Kernel List Mvee Proc Remon_core Remon_kernel Remon_sim Sched String Syscall Sysno Vtime
