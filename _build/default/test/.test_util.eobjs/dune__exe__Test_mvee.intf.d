test/test_mvee.mli:
