test/test_kernel2.mli:
