test/test_shapes.ml: Alcotest Classification Clients List Parsec Phoronix Printf Profile Remon_core Remon_sim Remon_util Remon_workloads Runner Servers Splash String Vtime
