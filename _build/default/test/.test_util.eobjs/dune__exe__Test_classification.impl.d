test/test_classification.ml: Alcotest Classification Fmt List Policy QCheck2 QCheck_alcotest Remon_core Remon_kernel Syscall Sysno
