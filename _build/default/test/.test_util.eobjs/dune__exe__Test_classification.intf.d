test/test_classification.mli:
