test/test_kernel3.mli:
