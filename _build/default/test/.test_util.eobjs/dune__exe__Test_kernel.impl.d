test/test_kernel.ml: Alcotest Errno Format Int64 Kernel List Net Proc Remon_kernel Remon_sim Sched Sigdefs String Syscall Vm Vtime
