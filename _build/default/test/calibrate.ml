(* Calibration probe: measures the effective per-call cost of CP monitoring
   and of the IP-MON fast path in this simulator, used to set per-benchmark
   densities from the paper's reported overheads. *)

open Remon_core
open Remon_workloads

let () =
  let probe density =
    let p =
      Profile.make ~name:(Printf.sprintf "probe%.0f" density) ~threads:4
        ~density_hz:density ~calls:2000 ~mix:Profile.mix_file_rw
        ~description:"calibration probe" ()
    in
    let n_ghumvee = Runner.normalized_time p (Runner.cfg_ghumvee ()) in
    let n_remon =
      Runner.normalized_time p (Runner.cfg_remon Classification.Nonsocket_rw_level)
    in
    let n_varan = Runner.normalized_time p (Runner.cfg_varan ()) in
    Printf.printf
      "density=%8.0f Hz/thread  ghumvee=%.3f  remon/nonsocket_rw=%.3f  varan=%.3f  C_cp=%.2f us  C_ip=%.2f us\n%!"
      density n_ghumvee n_remon n_varan
      ((n_ghumvee -. 1.) /. density *. 1e6)
      ((n_remon -. 1.) /. density *. 1e6)
  in
  List.iter probe [ 1_000.; 5_000.; 10_000.; 20_000.; 50_000.; 100_000. ]
