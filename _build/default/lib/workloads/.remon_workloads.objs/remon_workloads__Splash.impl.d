lib/workloads/splash.ml: Profile
