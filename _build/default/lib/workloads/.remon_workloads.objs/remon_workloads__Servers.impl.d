lib/workloads/servers.ml: Api Int64 List Mvee Remon_core Remon_kernel Sched String Syscall
