lib/workloads/profile.ml: Api Array Float Hashtbl List Mvee Remon_core Remon_kernel Remon_util Rng Sched String Syscall
