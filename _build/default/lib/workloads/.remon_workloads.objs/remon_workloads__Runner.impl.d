lib/workloads/runner.ml: Classification Clients Divergence Kernel Mvee Policy Printf Profile Remon_core Remon_kernel Remon_sim Servers Vtime
