lib/workloads/api.ml: Errno Proc Remon_kernel Remon_sim Sched String Syscall Vtime
