lib/workloads/clients.mli: Kernel Remon_kernel Remon_sim Servers Vtime
