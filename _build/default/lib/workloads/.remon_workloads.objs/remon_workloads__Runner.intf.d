lib/workloads/runner.mli: Classification Clients Cost_model Divergence Mvee Profile Remon_core Remon_sim Servers Vtime
