lib/workloads/profile.mli: Mvee Remon_core
