lib/workloads/phoronix.ml: Array Classification Profile Remon_core
