lib/workloads/clients.ml: Api Kernel Printf Remon_kernel Remon_sim Sched Servers String Vtime
