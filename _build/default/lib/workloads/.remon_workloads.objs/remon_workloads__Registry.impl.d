lib/workloads/registry.ml: Clients List Parsec Phoronix Printf Profile Servers Spec Splash
