lib/workloads/registry.mli: Clients Profile Servers
