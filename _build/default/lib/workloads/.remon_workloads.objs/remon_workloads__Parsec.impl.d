lib/workloads/parsec.ml: Profile
