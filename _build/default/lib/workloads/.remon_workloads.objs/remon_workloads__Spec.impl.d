lib/workloads/spec.ml: List Profile
