lib/workloads/servers.mli: Mvee Remon_core
