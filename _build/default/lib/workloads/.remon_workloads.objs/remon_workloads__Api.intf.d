lib/workloads/api.mli: Errno Remon_kernel Remon_sim Syscall
