(** Profile-driven synthetic workloads: each benchmark from the paper's
    suites is a syscall profile (threads, per-thread call density, op mix).
    All randomness is keyed by profile name and thread rank — never by the
    replica index — so replicas issue identical sequences. *)

open Remon_core

type op =
  | Op_gettime (** BASE unconditional *)
  | Op_getpid (** BASE unconditional *)
  | Op_yield (** BASE unconditional *)
  | Op_stat (** NONSOCKET_RO unconditional *)
  | Op_read_file of int (** NONSOCKET_RO conditional (pread of n bytes) *)
  | Op_write_file of int (** NONSOCKET_RW conditional (pwrite) *)
  | Op_pipe_rw of int (** write+read on a pipe *)
  | Op_sock_rw of int (** send+recv on a socketpair: SOCKET levels *)
  | Op_poll_sock (** poll on a socket: SOCKET_RO *)
  | Op_lock (** user-space lock/unlock: exercises the rr agent, no syscall *)
  | Op_open_close (** always monitored: fd lifecycle *)

val op_calls : op -> int
(** Syscalls one op issues (0 for [Op_lock]). *)

type t = {
  name : string;
  threads : int;
  density_hz : float; (** syscalls per second per worker thread *)
  total_calls_per_thread : int;
  mix : (float * op) list;
  jitter : float;
  mem_pressure : float;
      (** relative compute slowdown per co-running replica (cache and
          memory-bandwidth pressure, the paper's residual cost) *)
  description : string;
}

val make :
  name:string ->
  ?threads:int ->
  density_hz:float ->
  ?calls:int ->
  ?jitter:float ->
  ?mem_pressure:float ->
  mix:(float * op) list ->
  description:string ->
  unit ->
  t

val body : t -> Mvee.env -> unit
(** The program every replica runs: sets up fixtures, spawns workers, joins. *)

(** {1 Mix archetypes} *)

val mix_compute : (float * op) list
val mix_file_ro : (float * op) list
val mix_file_rw : (float * op) list
val mix_pipe : (float * op) list
val mix_sock : (float * op) list
val mix_sync : (float * op) list
val mix_interp : (float * op) list
val mix_unpack : (float * op) list

(** {1 Calibration} *)

val c_cp_seconds : float
(** Measured per-call cost of CP monitoring in this simulator. *)

val density_for : paper_overhead:float -> float

val monitored_fraction : (float * op) list -> float
val residual_ratio : (float * op) list -> float

val fit : paper_no:float -> paper_ip:float -> mix:(float * op) list -> float * float
(** Solves (density, memory pressure) from a benchmark's two published
    bars; the suites' only fitted parameters. *)
