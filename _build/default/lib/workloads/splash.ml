(* SPLASH-2x-like workload profiles (Figure 3, right half).

   cholesky is excluded, as in the paper (gcc incompatibility). *)

type entry = {
  bench : string;
  paper_no_ipmon : float;
  paper_ipmon : float;
  profile : Profile.t;
}

let def bench ~no ~ip ~mix ?(jitter = 0.2) ?(calls = 1600) () =
  let density_hz, mem_pressure = Profile.fit ~paper_no:no ~paper_ip:ip ~mix in
  {
    bench;
    paper_no_ipmon = no;
    paper_ipmon = ip;
    profile =
      Profile.make ~name:("splash." ^ bench) ~threads:4 ~density_hz ~mem_pressure
        ~calls ~jitter ~mix
        ~description:("SPLASH-2x " ^ bench ^ " syscall profile")
        ();
  }

(* water_spatial: extreme density (paper: >60k calls/s, 320% CP overhead)
   dominated by user-space sync and cheap time queries — almost everything
   exempt at NONSOCKET_RW, hence the dramatic drop to 20.7%. *)
let mix_water_spatial =
  Profile.[
    (0.45, Op_gettime);
    (0.30, Op_lock);
    (0.15, Op_yield);
    (0.10, Op_read_file 256);
  ]

(* radiosity: sync-heavy but with residual fd lifecycle traffic, so more
   of its overhead survives IP-MON (1.63 -> 1.38 in the paper). *)
let mix_radiosity =
  Profile.[
    (0.35, Op_lock);
    (0.25, Op_gettime);
    (0.2, Op_open_close);
    (0.2, Op_read_file 512);
  ]

let all : entry list =
  [
    def "barnes" ~no:1.48 ~ip:1.52 ~mix:Profile.mix_sync ();
    def "fft" ~no:1.03 ~ip:1.02 ~mix:Profile.mix_compute ();
    def "fmm" ~no:1.55 ~ip:1.13 ~mix:Profile.mix_sync ();
    def "lu_cb" ~no:1.01 ~ip:1.00 ~mix:Profile.mix_compute ();
    def "lu_ncb" ~no:0.94 ~ip:0.95 ~mix:Profile.mix_compute ();
    def "ocean_cp" ~no:1.06 ~ip:1.05 ~mix:Profile.mix_compute ();
    def "ocean_ncp" ~no:1.09 ~ip:1.05 ~mix:Profile.mix_compute ();
    def "radiosity" ~no:1.63 ~ip:1.38 ~mix:mix_radiosity ();
    def "radix" ~no:1.05 ~ip:1.05 ~mix:Profile.mix_compute ();
    def "raytrace" ~no:1.17 ~ip:1.02 ~mix:Profile.mix_file_ro ();
    def "volrend" ~no:1.22 ~ip:1.07 ~mix:Profile.mix_file_ro ();
    def "water_nsquared" ~no:1.04 ~ip:1.02 ~mix:Profile.mix_compute ();
    def "water_spatial" ~no:4.20 ~ip:1.21 ~mix:mix_water_spatial ~jitter:0.3 ();
  ]

let paper_geomean_no_ipmon = 1.292 (* +29.2% *)
let paper_geomean_ipmon = 1.104 (* +10.4% *)
