(* Client load generators for the server benchmarks: ab-like (one request
   per connection), wrk-like (keep-alive, many requests per connection),
   and http_load-like (non-keep-alive at higher concurrency).

   Clients are ordinary unreplicated processes on the "other machine": the
   link latency between them and the server is the kernel's network
   latency, set per scenario (0.1 ms / 2 ms / 5 ms as in the paper). *)

open Remon_kernel
open Remon_sim

type spec = {
  name : string;
  concurrency : int; (* parallel closed-loop connections *)
  total_requests : int;
  requests_per_conn : int; (* 1 = ab-like; >1 = keep-alive *)
}

let ab ?(concurrency = 8) ?(total_requests = 240) () =
  { name = "ab"; concurrency; total_requests; requests_per_conn = 1 }

let wrk ?(concurrency = 24) ?(total_requests = 720) () =
  { name = "wrk"; concurrency; total_requests; requests_per_conn = 30 }

let http_load ?(concurrency = 16) ?(total_requests = 320) () =
  { name = "http_load"; concurrency; total_requests; requests_per_conn = 1 }

type measurement = {
  mutable started_at : Vtime.t option;
  mutable finished : int; (* client workers done *)
  mutable finished_at : Vtime.t;
  mutable responses : int;
}

(* One closed-loop worker: opens connections against [port] and issues its
   share of the requests. *)
let worker (server : Servers.spec) spec meas ~requests () =
  if meas.started_at = None then meas.started_at <- Some (Sched.vnow ());
  let remaining = ref requests in
  while !remaining > 0 do
    let fd = Api.socket () in
    Api.connect_retry fd server.Servers.port;
    let in_this_conn = min spec.requests_per_conn !remaining in
    for _ = 1 to in_this_conn do
      ignore (Api.send fd (String.make server.Servers.request_bytes 'q'));
      let resp = Api.recv_exactly fd server.Servers.response_bytes in
      if String.length resp = server.Servers.response_bytes then
        meas.responses <- meas.responses + 1
    done;
    remaining := !remaining - in_this_conn;
    Api.close fd
  done;
  meas.finished <- meas.finished + 1;
  meas.finished_at <- Vtime.max meas.finished_at (Sched.vnow ())

(* Spawns the client fleet as separate processes. Returns the measurement
   record, filled in as the simulation runs. *)
let launch (kernel : Kernel.t) (server : Servers.spec) (spec : spec) : measurement =
  let meas =
    { started_at = None; finished = 0; finished_at = Vtime.zero; responses = 0 }
  in
  let per_worker = spec.total_requests / spec.concurrency in
  for i = 1 to spec.concurrency do
    let requests =
      if i = spec.concurrency then
        spec.total_requests - (per_worker * (spec.concurrency - 1))
      else per_worker
    in
    ignore
      (Kernel.spawn_process kernel
         ~name:(Printf.sprintf "client-%s-%d" spec.name i)
         ~vm_seed:(9000 + i)
         ~start_clock:(Vtime.ms 1) (* give the server time to listen *)
         (worker server spec meas ~requests))
  done;
  meas

let duration meas =
  match meas.started_at with
  | Some t0 when meas.finished > 0 -> Vtime.sub meas.finished_at t0
  | _ -> Vtime.zero
