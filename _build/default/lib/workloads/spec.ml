(* SPEC CPU2006-like profiles for Table 2's last rows: compute-dominated
   single-threaded benchmarks with very low syscall density, where MVEE
   overhead comes almost entirely from the memory subsystem (not modeled)
   and residual monitoring. The paper reports ReMon at +3.1% overall. *)

type entry = { bench : string; suite : [ `Int | `Fp ]; profile : Profile.t }

let def bench suite ~density =
  {
    bench;
    suite;
    profile =
      Profile.make
        ~name:("spec." ^ bench)
        ~threads:1 ~density_hz:density ~calls:600 ~jitter:0.1
        ~mix:Profile.mix_compute
        ~description:("SPEC CPU2006-like " ^ bench)
        ();
  }

let all =
  [
    def "perlbench" `Int ~density:4_000.;
    def "bzip2" `Int ~density:1_500.;
    def "gcc" `Int ~density:6_000.;
    def "mcf" `Int ~density:400.;
    def "gobmk" `Int ~density:900.;
    def "hmmer" `Int ~density:350.;
    def "sjeng" `Int ~density:400.;
    def "libquantum" `Int ~density:300.;
    def "h264ref" `Int ~density:1_200.;
    def "omnetpp" `Int ~density:2_500.;
    def "astar" `Int ~density:450.;
    def "xalancbmk" `Int ~density:3_500.;
    def "milc" `Fp ~density:500.;
    def "namd" `Fp ~density:300.;
    def "dealII" `Fp ~density:800.;
    def "soplex" `Fp ~density:900.;
    def "povray" `Fp ~density:1_100.;
    def "lbm" `Fp ~density:300.;
    def "sphinx3" `Fp ~density:1_400.;
  ]

let ints = List.filter (fun e -> e.suite = `Int) all
let fps = List.filter (fun e -> e.suite = `Fp) all
