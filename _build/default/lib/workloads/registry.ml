(* Name -> workload registry for the CLI and tests. *)

type workload =
  | Profile_workload of Profile.t
  | Server_workload of Servers.spec * Clients.spec

let all : (string * workload) list =
  List.map
    (fun (e : Parsec.entry) -> (e.Parsec.profile.Profile.name, Profile_workload e.profile))
    Parsec.all
  @ List.map
      (fun (e : Splash.entry) -> (e.Splash.profile.Profile.name, Profile_workload e.profile))
      Splash.all
  @ List.map
      (fun (e : Phoronix.entry) ->
        (e.Phoronix.profile.Profile.name, Profile_workload e.profile))
      Phoronix.all
  @ List.map
      (fun (e : Spec.entry) -> (e.Spec.profile.Profile.name, Profile_workload e.profile))
      Spec.all
  @ [
      ("server.beanstalkd", Server_workload (Servers.beanstalkd, Clients.wrk ()));
      ("server.lighttpd-wrk", Server_workload (Servers.lighttpd_wrk, Clients.wrk ()));
      ("server.memcached", Server_workload (Servers.memcached, Clients.wrk ()));
      ("server.nginx-wrk", Server_workload (Servers.nginx_wrk, Clients.wrk ()));
      ("server.redis", Server_workload (Servers.redis, Clients.wrk ()));
      ("server.apache-ab", Server_workload (Servers.apache_ab, Clients.ab ()));
      ("server.thttpd-ab", Server_workload (Servers.thttpd_ab, Clients.ab ()));
      ("server.lighttpd-ab", Server_workload (Servers.lighttpd_ab, Clients.ab ()));
      ( "server.lighttpd-http-load",
        Server_workload (Servers.lighttpd_http_load, Clients.http_load ()) );
    ]

let names = List.map fst all

let find name = List.assoc_opt name all

let describe = function
  | Profile_workload p ->
    Printf.sprintf "profile: %s (%d threads, %.0f calls/s/thread)"
      p.Profile.description p.Profile.threads p.Profile.density_hz
  | Server_workload (s, c) ->
    Printf.sprintf "server: %s driven by %s (%d conns, %d requests)"
      s.Servers.name c.Clients.name c.Clients.concurrency c.Clients.total_requests
