(* Phoronix-like workload profiles (Figure 4): all five spatial exemption
   levels are swept over each benchmark, so the mixes are chosen to
   reproduce each benchmark's characteristic "staircase" — which level
   unlocks which fraction of its syscall stream. *)

open Remon_core

type entry = {
  bench : string;
  (* paper bars: no-IP-MON, BASE, NONSOCKET_RO, NONSOCKET_RW, SOCKET_RO,
     SOCKET_RW *)
  paper : float array;
  profile : Profile.t;
}

let levels =
  Classification.
    [ Base_level; Nonsocket_ro_level; Nonsocket_rw_level; Socket_ro_level; Socket_rw_level ]

let def bench ~paper ~mix ?(threads = 1) ?(jitter = 0.15) ?(calls = 2500) () =
  let density_hz, mem_pressure =
    Profile.fit ~paper_no:paper.(0) ~paper_ip:paper.(5) ~mix
  in
  {
    bench;
    paper;
    profile =
      Profile.make ~name:("phoronix." ^ bench) ~threads ~density_hz ~mem_pressure
        ~calls ~jitter ~mix
        ~description:("Phoronix " ^ bench ^ " syscall profile")
        ();
  }

(* gzip-style compression: file reads dominate with a write stream. *)
let mix_compress =
  Profile.[
    (0.5, Op_read_file 16384);
    (0.35, Op_write_file 8192);
    (0.1, Op_stat);
    (0.05, Op_gettime);
  ]

(* media encoders: mostly large reads, light writes *)
let mix_encode =
  Profile.[
    (0.6, Op_read_file 32768);
    (0.2, Op_write_file 8192);
    (0.1, Op_stat);
    (0.1, Op_gettime);
  ]

(* network-loopback: raw socket throughput over the loopback interface *)
let mix_loopback =
  Profile.[
    (0.62, Op_sock_rw 1024);
    (0.18, Op_poll_sock);
    (0.12, Op_gettime);
    (0.08, Op_write_file 512);
  ]

(* nginx (Phoronix variant): socket request handling with file reads *)
let mix_nginx_phoronix =
  Profile.[
    (0.5, Op_sock_rw 4096);
    (0.2, Op_poll_sock);
    (0.2, Op_read_file 4096);
    (0.1, Op_gettime);
  ]

let all : entry list =
  [
    def "compress-gzip" ~paper:[| 1.11; 1.11; 1.04; 1.04; 1.04; 1.05 |] ~mix:mix_compress ();
    def "encode-flac" ~paper:[| 1.17; 1.17; 1.08; 1.02; 1.02; 1.02 |] ~mix:mix_encode ();
    def "encode-ogg" ~paper:[| 1.09; 1.10; 1.06; 1.01; 1.01; 1.01 |] ~mix:mix_encode ();
    def "mencoder" ~paper:[| 1.05; 1.04; 1.01; 1.00; 1.00; 1.00 |] ~mix:mix_encode ();
    def "phpbench" ~paper:[| 2.48; 1.90; 1.90; 1.13; 1.13; 1.13 |] ~mix:Profile.mix_interp ();
    def "unpack-linux" ~paper:[| 1.47; 1.48; 1.44; 1.22; 1.17; 1.17 |] ~mix:Profile.mix_unpack ();
    def "network-loopback"
      ~paper:[| 25.46; 25.36; 24.89; 17.03; 9.18; 3.00 |]
      ~mix:mix_loopback ~threads:4 ~calls:4000 ();
    def "nginx"
      ~paper:[| 9.77; 7.76; 7.74; 7.58; 6.65; 3.71 |]
      ~mix:mix_nginx_phoronix ~threads:4 ~calls:4000 ();
  ]

let paper_geomean_no_ipmon = 2.464 (* +146.4% in the text *)
let paper_geomean_socket_rw = 1.412 (* +41.2% *)
