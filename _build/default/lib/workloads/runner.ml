(* Orchestration: runs workloads under MVEE configurations in fresh kernels
   and reports virtual-time durations and overheads. *)

open Remon_kernel
open Remon_core
open Remon_sim

exception Mvee_terminated of Divergence.t

type run_result = {
  duration : Vtime.t;
  outcome : Mvee.outcome;
}

let run_body ?cost ?(net_latency = Vtime.us 50) ?(check_verdict = true)
    (config : Mvee.config) ~name ~(body : Mvee.env -> unit) : run_result =
  let kernel = Kernel.create ?cost ~seed:config.Mvee.seed ~net_latency () in
  let h = Mvee.launch kernel config ~name ~body in
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  (match outcome.Mvee.verdict with
  | Some v when check_verdict -> raise (Mvee_terminated v)
  | _ -> ());
  { duration = outcome.Mvee.duration; outcome }

let run_profile ?cost (profile : Profile.t) (config : Mvee.config) : run_result =
  run_body ?cost config ~name:profile.Profile.name ~body:(Profile.body profile)

(* Normalized execution time of [config] vs. a native run of the same
   profile — the y-axis of Figures 3 and 4. *)
let normalized_time ?cost (profile : Profile.t) (config : Mvee.config) : float =
  let native =
    run_profile ?cost profile { config with Mvee.backend = Mvee.Native }
  in
  let under = run_profile ?cost profile config in
  Vtime.to_float_ns under.duration /. Vtime.to_float_ns native.duration

(* Standard configurations used throughout the evaluation. *)
let cfg_ghumvee ?(nreplicas = 2) ?(seed = 42) () =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Ghumvee_only;
    nreplicas;
    seed;
    policy = Policy.monitor_everything;
  }

let cfg_remon ?(nreplicas = 2) ?(seed = 42) level =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Remon;
    nreplicas;
    seed;
    policy = Policy.spatial level;
  }

let cfg_varan ?(nreplicas = 2) ?(seed = 42) () =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Varan;
    nreplicas;
    seed;
    policy = Policy.spatial Classification.Socket_rw_level;
  }

let cfg_native ?(seed = 42) () =
  { Mvee.default_config with Mvee.backend = Mvee.Native; nreplicas = 1; seed }

(* ------------------------------------------------------------------ *)
(* Server benchmarks (Figure 5 / Table 2) *)

type server_run = {
  client_duration : Vtime.t;
  responses : int;
  server_outcome : Mvee.outcome;
}

let run_server_bench ?(latency = Vtime.us 100) ~(server : Servers.spec)
    ~(client : Clients.spec) (config : Mvee.config) : server_run =
  let kernel =
    Kernel.create ~seed:config.Mvee.seed ~net_latency:latency ()
  in
  let h = Mvee.launch kernel config ~name:server.Servers.name ~body:(Servers.body server) in
  let meas = Clients.launch kernel server client in
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  (match outcome.Mvee.verdict with
  | Some v -> raise (Mvee_terminated v)
  | None -> ());
  if meas.Clients.responses < client.Clients.total_requests then
    failwith
      (Printf.sprintf "server bench %s: only %d/%d responses" server.Servers.name
         meas.Clients.responses client.Clients.total_requests);
  {
    client_duration = Clients.duration meas;
    responses = meas.Clients.responses;
    server_outcome = outcome;
  }

(* Normalized runtime overhead of the client-observed duration, the y-axis
   of Figure 5. *)
let server_overhead ?latency ~server ~client (config : Mvee.config) : float =
  let native =
    run_server_bench ?latency ~server ~client
      { config with Mvee.backend = Mvee.Native }
  in
  let under = run_server_bench ?latency ~server ~client config in
  Vtime.to_float_ns under.client_duration
  /. Vtime.to_float_ns native.client_duration
  -. 1.0
