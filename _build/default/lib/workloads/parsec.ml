(* PARSEC 2.1-like workload profiles (Figure 3, left half).

   Each entry records the paper's measured normalized execution times
   (no-IP-MON, IP-MON@NONSOCKET_RW) for two replicas. The per-thread
   syscall density is derived from the no-IP-MON anchor through the
   calibrated CP-monitoring cost; the op mix reflects each benchmark's
   character (pipeline stages, data files, user-space synchronization).

   canneal is excluded, as in the paper (its intentional data races make it
   incompatible with MVEEs). *)

type entry = {
  bench : string;
  paper_no_ipmon : float; (* Figure 3, "no IP-MON" bar *)
  paper_ipmon : float; (* Figure 3, "IP-MON/NONSOCKET_RW_LEVEL" bar *)
  profile : Profile.t;
}

let def bench ~no ~ip ~mix ?(jitter = 0.2) ?(calls = 1600) () =
  let density_hz, mem_pressure = Profile.fit ~paper_no:no ~paper_ip:ip ~mix in
  {
    bench;
    paper_no_ipmon = no;
    paper_ipmon = ip;
    profile =
      Profile.make ~name:("parsec." ^ bench) ~threads:4 ~density_hz ~mem_pressure
        ~calls ~jitter ~mix
        ~description:("PARSEC 2.1 " ^ bench ^ " syscall profile")
        ();
  }

(* dedup: pipelined compression with very high syscall density (paper:
   >60k calls/s) and regular fd churn from its stage queues. *)
let mix_dedup =
  Profile.[
    (0.40, Op_pipe_rw 4096);
    (0.25, Op_read_file 4096);
    (0.15, Op_gettime);
    (0.12, Op_open_close);
    (0.08, Op_lock);
  ]

let all : entry list =
  [
    def "blackscholes" ~no:1.09 ~ip:1.04 ~mix:Profile.mix_compute ();
    def "bodytrack" ~no:1.15 ~ip:1.03 ~mix:Profile.mix_file_ro ();
    def "dedup" ~no:3.53 ~ip:1.69 ~mix:mix_dedup ~jitter:0.35 ();
    def "facesim" ~no:1.11 ~ip:1.03 ~mix:Profile.mix_file_ro ();
    def "ferret" ~no:1.04 ~ip:1.11 ~mix:Profile.mix_compute ();
    def "fluidanimate" ~no:1.28 ~ip:1.33 ~mix:Profile.mix_sync ();
    def "freqmine" ~no:1.06 ~ip:1.05 ~mix:Profile.mix_compute ();
    def "raytrace" ~no:1.03 ~ip:1.00 ~mix:Profile.mix_compute ();
    def "streamcluster" ~no:1.16 ~ip:0.97 ~mix:Profile.mix_sync ();
    def "swaptions" ~no:1.07 ~ip:1.07 ~mix:Profile.mix_compute ();
    def "vips" ~no:1.10 ~ip:1.03 ~mix:Profile.mix_file_rw ();
    def "x264" ~no:1.11 ~ip:1.16 ~mix:Profile.mix_file_rw ();
  ]

let paper_geomean_no_ipmon = 1.219 (* +21.9% in the text *)
let paper_geomean_ipmon = 1.112 (* +11.2% *)
