(** Name -> workload registry for the CLI and tests. *)

type workload =
  | Profile_workload of Profile.t
  | Server_workload of Servers.spec * Clients.spec

val all : (string * workload) list
val names : string list
val find : string -> workload option
val describe : workload -> string
