(** Statistics helpers for the benchmark harness and tests. *)

val mean : float list -> float
val geomean : float list -> float

(** Population standard deviation. *)
val stddev : float list -> float

val min_max : float list -> float * float

(** Nearest-rank percentile, [p] in [\[0, 100\]]. *)
val percentile : float list -> float -> float

val median : float list -> float

(** [(measured - baseline) / baseline]. *)
val overhead : baseline:float -> measured:float -> float

(** [measured / baseline], the paper's "normalized execution time". *)
val ratio : baseline:float -> measured:float -> float
