(* Small statistics helpers used by the benchmark harness and tests. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Geometric mean; the paper reports GEOMEAN bars for every suite. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0. xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let stddev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let min_max xs =
  match xs with
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

(* Nearest-rank percentile on a private sorted copy. *)
let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile xs 50.

(* Relative overhead of [measured] versus [baseline], e.g. 0.10 for +10%. *)
let overhead ~baseline ~measured =
  if baseline <= 0. then invalid_arg "Stats.overhead: non-positive baseline";
  (measured -. baseline) /. baseline

let ratio ~baseline ~measured =
  if baseline <= 0. then invalid_arg "Stats.ratio: non-positive baseline";
  measured /. baseline
