(* Deterministic splittable pseudo-random number generator (SplitMix64).

   The whole simulator must be reproducible: every source of randomness is
   drawn from an explicitly-seeded generator, and independent components
   receive independent streams via [split] so that adding draws in one
   component never perturbs another. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

(* SplitMix64 finalizer: advances the state by the golden-ratio increment and
   scrambles it through two xor-shift-multiply rounds. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let int64 t = next_int64 t

let float t =
  let mask53 = (1 lsl 53) - 1 in
  float_of_int (Int64.to_int (next_int64 t) land mask53)
  /. float_of_int (mask53 + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Draws an index according to the given non-negative weights. *)
let weighted t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.weighted: weights must sum to > 0";
  let x = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Exponentially distributed duration with the given mean; used to model
   jitter in compute phases and client think times. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u
