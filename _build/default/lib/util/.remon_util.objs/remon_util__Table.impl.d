lib/util/table.ml: Array Buffer Int64 List Printf String
