lib/util/stats.mli:
