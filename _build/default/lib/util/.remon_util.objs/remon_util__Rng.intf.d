lib/util/rng.mli:
