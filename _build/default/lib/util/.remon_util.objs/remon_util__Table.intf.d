lib/util/table.mli:
