(* The record/replay agent embedded in each replica (Section 2.3).

   Multi-threaded replicas are non-deterministic: without intervention they
   may acquire user-space locks in different orders and then issue different
   syscall sequences, which a lockstep monitor would (wrongly) treat as an
   attack. The agent forces every replica to acquire user-space
   synchronization objects in the order the master acquired them.

   The master appends (lock, thread-rank) events to a log in the shared
   segment; slaves gate each acquisition until the log says it is their
   turn. The gating is a user-space wait on shared memory — no syscalls, so
   it is invisible to the monitors, exactly like the real agent. *)

open Remon_kernel

type t = {
  kernel : Kernel.t;
  log : Record_log.t;
  enabled : bool;
  mutable gated : int; (* slave acquisitions that had to wait *)
}

let create ~kernel ~log ~enabled = { kernel; log; enabled; gated = 0 }

(* Master side: runs right after a successful acquisition. *)
let master_acquired t ~lock_id ~thread_rank =
  if t.enabled then begin
    Record_log.append t.log ~lock_id ~thread_rank;
    Kernel.kick t.kernel
  end

(* Slave side: runs before attempting an acquisition; returns once the
   master's log shows this (lock, rank) as the next event for us. *)
let slave_gate t ~variant ~lock_id ~thread_rank =
  if t.enabled then begin
    let ready () =
      match Record_log.peek t.log ~variant with
      | Some ev -> ev.Record_log.lock_id = lock_id && ev.thread_rank = thread_rank
      | None -> false
    in
    if not (ready ()) then begin
      t.gated <- t.gated + 1;
      Sched.wait_user ready
    end;
    Record_log.advance t.log ~variant;
    Kernel.kick t.kernel
  end
