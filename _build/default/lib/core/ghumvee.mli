(** GHUMVEE: the security-oriented cross-process monitor. Attached to every
    replica via the simulated ptrace API; monitored calls execute in
    lockstep (rendezvous -> deep argument comparison -> master-only I/O with
    result replication), asynchronous signals are deferred to rendezvous
    points, and any divergence shuts the whole replica set down. *)

open Remon_kernel
open Remon_sim

type arrival = { variant : int; th : Proc.thread; call : Syscall.call }

type rstate =
  | Idle
  | Collecting of arrival list
  | Master_running of { arrivals : arrival list }
  | Await_slave_exits of { mutable remaining : int }
  | All_running of { mutable remaining : int }

type t = {
  g : Context.group;
  kernel : Kernel.t;
  rendezvous : (int, rstate) Hashtbl.t; (** per thread rank *)
  seqs : (int, int) Hashtbl.t;
  mutable busy_until : Vtime.t;
      (** monitor serialization: concurrent stops queue behind it *)
  deferred_signals : int Queue.t;
  watchdog_ns : Vtime.t;
  mutable exits_seen : (int * int) list;
  mutable shutting_down : bool;
  mutable rendezvous_count : int;
  mutable results_copied : int;
  mutable signals_deferred : int;
  mutable signals_injected : int;
  mutable maps_filtered : int;
  mutable shm_rejected : int;
}

val create : Context.group -> ?watchdog_ns:Vtime.t -> unit -> t

val attach : t -> Proc.process -> unit
(** ptrace-attach to a replica and watch for abnormal death. *)

val shutdown : t -> Divergence.t -> unit
(** Record the verdict and kill every replica. *)

val tracer : t -> Proc.tracer
(** The raw stop-event handler (exposed for tests). *)
