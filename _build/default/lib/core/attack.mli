(** Attack scenarios from the paper's security analysis (Section 4), each
    reporting whether the malicious action took effect on the host and how
    (or whether) the MVEE detected it. *)

type report = {
  scenario : string;
  attack_effect : bool; (** malicious externally-visible effect occurred *)
  detected : Divergence.t option;
  notes : string;
}

val pp_report : Format.formatter -> report -> unit

val divergent_syscall : ?config:Mvee.config -> ?compromised:int -> unit -> report
(** A compromised replica issues a syscall the others do not. *)

val forged_token : ?config:Mvee.config -> unit -> report
(** Unmonitored execution attempted with a guessed IK-B token. *)

val rb_discovery : ?config:Mvee.config -> unit -> report
(** Attacker greps /proc/self/maps for the RB / IP-MON regions. *)

val rb_guessing : ?config:Mvee.config -> ?probes:int -> unit -> report
(** Blind probes for the RB's base address. *)

val payload_spray : ?config:Mvee.config -> unit -> report
(** Address-dependent payload vs. (possibly disabled) diversity. *)

val all_scenarios : ?config:Mvee.config -> unit -> report list
