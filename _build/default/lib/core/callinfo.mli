(** Per-call metadata shared by IK-B, IP-MON and GHUMVEE. *)

open Remon_kernel

val fd_of : Syscall.call -> int option
(** The primary descriptor a call operates on, if any. *)

val may_block : File_map.t -> Syscall.call -> bool
(** Blocking prediction from the file map (Listing 1's MAYBE_BLOCKING). *)

(** How the monitors execute a call across replicas. *)
type disposition =
  | Master_call (** master executes; slaves receive replicated results *)
  | All_call (** every replica executes its own instance (local state) *)

val disposition : Syscall.call -> disposition

val fds_created : Syscall.call -> Syscall.result -> int list
(** New descriptor numbers a successful call produced; slaves install
    stub descriptors at the same numbers to stay aligned. *)

val fds_closed : Syscall.call -> Syscall.result -> int list

val normalize : Syscall.call -> Syscall.call
(** Blanks fields that legitimately differ between diversified replicas
    (pointer-valued epoll user data, futex/mapping addresses) before
    cross-replica comparison. *)

val equal_normalized : Syscall.call -> Syscall.call -> bool
(** GHUMVEE's deep argument comparison. *)
