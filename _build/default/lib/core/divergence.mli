(** Divergence verdicts: why an MVEE run was terminated, and which
    component detected it. *)

open Remon_kernel

type detector = By_ghumvee | By_ipmon | By_ikb

type t =
  | Args_mismatch of {
      rank : int;
      index : int;
      expected : string;
      got : string;
      variant : int;
      detector : detector;
    }
  | Sequence_mismatch of { rank : int; index : int; calls : string list }
  | Rendezvous_timeout of { rank : int; index : int; missing : int list }
  | Replica_crash of { variant : int; signal : int }
  | Exit_mismatch of { codes : (int * int) list }
  | Token_violation of { variant : int; call : string }
  | Shared_memory_rejected of { variant : int }

val detector_to_string : detector -> string
val to_string : t -> string

val render_call : Syscall.call -> string
(** Rendering used inside verdicts. *)
