(* Automated software diversity for the replicas (Section 4, "Diversified
   Replicas"): ASLR plus Disjoint Code Layouts [40].

   Each replica's address space draws placements from an independent RNG
   stream (ASLR). Under DCL, code regions are additionally placed in
   per-variant reserved windows that never overlap across replicas, so no
   code address is valid in more than one replica — a ROP payload that
   works in one replica faults in every other. *)

open Remon_kernel

type config = {
  aslr : bool; (* randomize placements per replica *)
  dcl : bool; (* disjoint code layouts across replicas *)
  code_bytes : int;
  stack_bytes : int;
  heap_bytes : int;
}

let default = {
  aslr = true;
  dcl = true;
  code_bytes = 4 * 1024 * 1024;
  stack_bytes = 8 * 1024 * 1024;
  heap_bytes = 64 * 1024 * 1024;
}

let rx = { Syscall.pr = true; pw = false; px = true }
let rw = { Syscall.pr = true; pw = true; px = false }

(* Per-variant disjoint code windows: 256 MiB apart. *)
let dcl_code_base variant =
  Int64.add 0x0000_4000_0000_0000L (Int64.mul (Int64.of_int variant) 0x1000_0000L)

let fixed_code_base = 0x0000_0000_0040_0000L (* no-ASLR default text base *)

(* Lays out code, heap and stack for one replica. Returns the heap base,
   which programs use as their diversified "pointer" seed. *)
let apply cfg (p : Proc.process) ~variant =
  let vm = p.Proc.vm in
  let code_result =
    if cfg.dcl then
      Vm.map_fixed vm ~start:(dcl_code_base variant) ~len:cfg.code_bytes
        ~prot:rx ~backing:Vm.Code ~tag:"text"
    else if cfg.aslr then Vm.map vm ~len:cfg.code_bytes ~prot:rx ~backing:Vm.Code ~tag:"text"
    else
      Vm.map_fixed vm ~start:fixed_code_base ~len:cfg.code_bytes ~prot:rx
        ~backing:Vm.Code ~tag:"text"
  in
  let heap_result =
    if cfg.aslr then Vm.map vm ~len:cfg.heap_bytes ~prot:rw ~backing:Vm.Heap ~tag:"heap"
    else
      Vm.map_fixed vm ~start:0x0000_5555_1000_0000L ~len:cfg.heap_bytes
        ~prot:rw ~backing:Vm.Heap ~tag:"heap"
  in
  let stack_result =
    if cfg.aslr then
      Vm.map vm ~len:cfg.stack_bytes ~prot:rw ~backing:Vm.Stack ~tag:"stack"
    else
      Vm.map_fixed vm ~start:0x0000_7FFE_0000_0000L ~len:cfg.stack_bytes
        ~prot:rw ~backing:Vm.Stack ~tag:"stack"
  in
  match (code_result, heap_result, stack_result) with
  | Ok code, Ok heap, Ok _ -> Ok (code.Vm.start, heap.Vm.start)
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let find_region_base (p : Proc.process) tag =
  List.find_map
    (fun (r : Vm.region) -> if r.tag = tag then Some r.start else None)
    p.Proc.vm.Vm.regions

let code_base p = find_region_base p "text"
let heap_base p = find_region_base p "heap"

(* Does [addr] fall inside [p]'s code region? An attack payload built from
   one replica's layout "works" only in replicas where this holds. *)
let addr_in_code (p : Proc.process) addr =
  match Vm.find_region p.Proc.vm addr with
  | Some { backing = Vm.Code; _ } -> true
  | _ -> false

(* DCL guarantee, checked by tests: no code address valid in two replicas. *)
let code_ranges_disjoint (procs : Proc.process list) =
  let ranges =
    List.filter_map
      (fun (p : Proc.process) ->
        List.find_map
          (fun (r : Vm.region) ->
            match r.backing with
            | Vm.Code -> Some (r.Vm.start, Int64.add r.Vm.start (Int64.of_int r.Vm.len))
            | _ -> None)
          p.Proc.vm.Vm.regions)
      procs
  in
  let rec pairwise = function
    | [] -> true
    | (s1, e1) :: rest ->
      List.for_all
        (fun (s2, e2) -> Int64.compare e1 s2 <= 0 || Int64.compare e2 s1 <= 0)
        rest
      && pairwise rest
  in
  pairwise ranges
