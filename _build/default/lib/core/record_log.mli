(** Shared log of user-space synchronization events (Section 2.3): the
    master appends lock-acquisition events; each slave consumes them in
    order to replay the master's acquisition order. *)

type event = { lock_id : int; thread_rank : int }

type t

val create : nreplicas:int -> t
val length : t -> int
val append : t -> lock_id:int -> thread_rank:int -> unit

val peek : t -> variant:int -> event option
(** Next unconsumed event for [variant], if the master has produced it. *)

val advance : t -> variant:int -> unit
