(** The record/replay agent embedded in each replica (Section 2.3): forces
    every replica to acquire user-space locks in the master's order, so
    multi-threaded replicas issue equivalent syscall sequences. The gating
    is a user-space wait on shared memory — invisible to the monitors. *)

open Remon_kernel

type t = {
  kernel : Kernel.t;
  log : Record_log.t;
  enabled : bool;
  mutable gated : int; (** slave acquisitions that had to wait *)
}

val create : kernel:Kernel.t -> log:Record_log.t -> enabled:bool -> t

val master_acquired : t -> lock_id:int -> thread_rank:int -> unit
(** Master side, right after a successful acquisition. *)

val slave_gate : t -> variant:int -> lock_id:int -> thread_rank:int -> unit
(** Slave side, before attempting an acquisition; returns when the log
    says it is this (lock, rank)'s turn. *)
