(* Shared log of user-space synchronization events (Section 2.3).

   The record/replay agent embedded in each replica forces all replicas to
   acquire user-space locks in the order the master acquired them, removing
   scheduling non-determinism that would otherwise make replicas issue
   different syscall sequences. The master appends (lock, thread-rank)
   events; each slave consumes them in order, gating its own acquisitions. *)

type event = { lock_id : int; thread_rank : int }

type t = {
  mutable events : event array;
  mutable len : int;
  consumed : int array; (* per variant; index 0 unused *)
}

let create ~nreplicas =
  { events = Array.make 64 { lock_id = 0; thread_rank = 0 }; len = 0; consumed = Array.make nreplicas 0 }

let length t = t.len

let append t ~lock_id ~thread_rank =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) t.events.(0) in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- { lock_id; thread_rank };
  t.len <- t.len + 1

(* The next unconsumed event for [variant], if the master has produced it. *)
let peek t ~variant =
  let pos = t.consumed.(variant) in
  if pos < t.len then Some t.events.(pos) else None

let advance t ~variant = t.consumed.(variant) <- t.consumed.(variant) + 1
