(** Automated software diversity for the replicas: ASLR plus Disjoint Code
    Layouts (Section 4). Under DCL no code address is valid in more than
    one replica, so address-dependent payloads cause divergence. *)

open Remon_kernel

type config = {
  aslr : bool; (** randomize placements per replica *)
  dcl : bool; (** disjoint code windows across replicas *)
  code_bytes : int;
  stack_bytes : int;
  heap_bytes : int;
}

val default : config

val dcl_code_base : int -> int64
(** The reserved, pairwise-disjoint code window for a variant. *)

val apply : config -> Proc.process -> variant:int -> (int64 * int64, Errno.t) result
(** Lays out code, heap and stack; returns (code base, heap base). *)

val code_base : Proc.process -> int64 option
val heap_base : Proc.process -> int64 option

val addr_in_code : Proc.process -> int64 -> bool
(** Does a payload's hard-coded address land in this replica's code? *)

val code_ranges_disjoint : Proc.process list -> bool
(** The DCL guarantee, checked by tests. *)
