(* Shadow mapping between fds and epoll user data (Section 3.9).

   Diversified replicas register different pointer values for the same
   logical descriptor. The monitors therefore replicate epoll results in
   terms of fds: the master's (user_data, events) pairs are mapped back to
   fds using the master's registrations, and each slave maps those fds
   forward to its own user data. *)

type t = {
  fwd : (int, int64) Hashtbl.t array; (* variant -> (fd -> user_data) *)
  rev : (int64, int) Hashtbl.t array; (* variant -> (user_data -> fd) *)
}

let create ~nreplicas =
  {
    fwd = Array.init nreplicas (fun _ -> Hashtbl.create 32);
    rev = Array.init nreplicas (fun _ -> Hashtbl.create 32);
  }

let register t ~variant ~fd ~user_data =
  (* drop any stale reverse binding for this fd *)
  (match Hashtbl.find_opt t.fwd.(variant) fd with
  | Some old -> Hashtbl.remove t.rev.(variant) old
  | None -> ());
  Hashtbl.replace t.fwd.(variant) fd user_data;
  Hashtbl.replace t.rev.(variant) user_data fd

let unregister t ~variant ~fd =
  match Hashtbl.find_opt t.fwd.(variant) fd with
  | Some ud ->
    Hashtbl.remove t.fwd.(variant) fd;
    Hashtbl.remove t.rev.(variant) ud
  | None -> ()

let user_data_of t ~variant ~fd = Hashtbl.find_opt t.fwd.(variant) fd
let fd_of t ~variant ~user_data = Hashtbl.find_opt t.rev.(variant) user_data

(* Master's epoll_wait result -> logical (fd, events) list. Events whose
   user data was never registered pass through with fd = -1 (they cannot be
   translated; replicas registered them identically or not at all). *)
let to_logical t events =
  List.map
    (fun (user_data, ev) ->
      match fd_of t ~variant:0 ~user_data with
      | Some fd -> (fd, ev)
      | None -> (-1, ev))
    events

(* Logical (fd, events) list -> [variant]'s (user_data, events) list. *)
let to_variant t ~variant logical =
  List.map
    (fun (fd, ev) ->
      match user_data_of t ~variant ~fd with
      | Some ud -> (ud, ev)
      | None -> (Int64.of_int fd, ev))
    logical
