lib/core/callinfo.ml: File_map Remon_kernel Syscall
