lib/core/file_map.mli: Proc Remon_kernel Shm
