lib/core/divergence.mli: Remon_kernel Syscall
