lib/core/ghumvee.mli: Context Divergence Hashtbl Kernel Proc Queue Remon_kernel Remon_sim Syscall Vtime
