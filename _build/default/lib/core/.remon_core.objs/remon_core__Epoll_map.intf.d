lib/core/epoll_map.mli: Remon_kernel
