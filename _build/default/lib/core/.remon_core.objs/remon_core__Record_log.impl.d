lib/core/record_log.ml: Array
