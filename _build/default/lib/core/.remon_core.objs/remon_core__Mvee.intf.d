lib/core/mvee.mli: Context Cost_model Divergence Diversity Ghumvee Kernel Policy Record_replay Remon_kernel Remon_sim Vtime
