lib/core/policy.mli: Classification Hashtbl Remon_kernel Remon_util Rng Syscall Sysno
