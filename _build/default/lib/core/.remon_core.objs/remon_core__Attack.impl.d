lib/core/attack.ml: Array Context Divergence Diversity Format Ikb Int64 Kernel Kstate Mvee Printf Proc Remon_kernel Remon_sim Remon_util Rng Sched Sigdefs String Syscall Vfs Vm Vtime
