lib/core/replication_buffer.mli: Hashtbl Record_log Remon_kernel Shm Syscall
