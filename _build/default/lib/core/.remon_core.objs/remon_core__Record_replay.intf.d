lib/core/record_replay.mli: Kernel Record_log Remon_kernel
