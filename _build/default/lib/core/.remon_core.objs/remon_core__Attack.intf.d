lib/core/attack.mli: Divergence Format Mvee
