lib/core/file_map.ml: Array Hashtbl Proc Remon_kernel Shm
