lib/core/diversity.mli: Errno Proc Remon_kernel
