lib/core/ghumvee.ml: Array Callinfo Context Cost_model Divergence Epoll_map Errno File_map Hashtbl Ikb Kernel Kstate List Proc Queue Remon_kernel Remon_sim Replication_buffer Sigdefs Syscall Vm Vtime
