lib/core/ipmon.mli: Context Proc Remon_kernel Syscall Sysno
