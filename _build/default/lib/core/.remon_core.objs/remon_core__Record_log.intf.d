lib/core/record_log.mli:
