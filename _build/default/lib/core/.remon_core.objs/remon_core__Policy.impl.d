lib/core/policy.ml: Classification Hashtbl Int64 Remon_kernel Remon_sim Remon_util Rng Syscall Sysno
