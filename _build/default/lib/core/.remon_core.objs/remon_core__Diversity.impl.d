lib/core/diversity.ml: Int64 List Proc Remon_kernel Syscall Vm
