lib/core/ikb.ml: Callinfo Divergence Hashtbl Int64 Kernel Kstate Policy Proc Remon_kernel Remon_sim Remon_util Replication_buffer Rng Syscall Sysno
