lib/core/replication_buffer.ml: Array Hashtbl Record_log Remon_kernel Shm Syscall
