lib/core/epoll_map.ml: Array Hashtbl Int64 List
