lib/core/classification.mli: Remon_kernel Sysno
