lib/core/divergence.ml: Format List Printf Remon_kernel Sigdefs String Syscall
