lib/core/context.ml: Divergence Epoll_map File_map Ikb Kernel Policy Proc Remon_kernel Replication_buffer
