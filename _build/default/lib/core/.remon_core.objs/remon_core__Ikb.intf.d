lib/core/ikb.mli: Divergence Hashtbl Kernel Kstate Policy Proc Remon_kernel Remon_util Replication_buffer Rng Syscall Sysno
