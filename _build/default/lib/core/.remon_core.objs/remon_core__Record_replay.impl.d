lib/core/record_replay.ml: Kernel Record_log Remon_kernel Sched
