lib/core/callinfo.mli: File_map Remon_kernel Syscall
