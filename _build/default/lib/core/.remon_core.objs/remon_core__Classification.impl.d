lib/core/classification.ml: List Remon_kernel Sysno
