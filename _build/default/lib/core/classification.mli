(** System-call classification: Table 1 of the paper.

    Five cumulative spatial-exemption levels; calls that allocate or manage
    process resources (fds, memory mappings, threads/processes, signals,
    System V IPC) are always monitored by GHUMVEE regardless of level. *)

open Remon_kernel

type level =
  | Base_level
  | Nonsocket_ro_level
  | Nonsocket_rw_level
  | Socket_ro_level
  | Socket_rw_level

val all_levels : level list
(** In ascending permissiveness order. *)

val level_rank : level -> int
(** [0] for BASE through [4] for SOCKET_RW. *)

val level_geq : level -> level -> bool
(** [level_geq a b]: does selecting level [a] also grant level [b]? *)

val level_to_string : level -> string
val level_of_string : string -> level option

type entry =
  | Always_monitored
  | Unconditional of level
      (** exempt whenever the selected level is at least this one *)
  | Conditional of level
      (** exempt at this level subject to a runtime argument check; the
          read/write families escalate to the SOCKET levels on sockets *)

val classify : Sysno.t -> entry

type fd_sensitivity = Read_family | Write_family | Not_fd_sensitive

val fd_sensitivity : Sysno.t -> fd_sensitivity

val required_level : Sysno.t -> on_socket:bool -> level option
(** Minimum level at which the call may run unmonitored, given whether the
    descriptor it touches is a socket. [None]: always monitored. *)

val ipmon_supported : Sysno.t list
(** The calls IP-MON's fast path can replicate (everything that is not
    [Always_monitored]); the set passed to [ipmon_register]. *)

val table1 : unit -> (level * Sysno.t list * Sysno.t list) list
(** Rows of Table 1, regenerated from [classify]: per level, the
    unconditional and conditional calls introduced there. *)
