(** Shadow mapping between fds and epoll user data (Section 3.9).
    Diversified replicas register different pointer cookies for the same
    logical descriptor; results are replicated in terms of fds and mapped
    back to each variant's own pointers. *)

type t

val create : nreplicas:int -> t
val register : t -> variant:int -> fd:int -> user_data:int64 -> unit
val unregister : t -> variant:int -> fd:int -> unit
val user_data_of : t -> variant:int -> fd:int -> int64 option
val fd_of : t -> variant:int -> user_data:int64 -> int option

val to_logical :
  t ->
  (int64 * Remon_kernel.Syscall.poll_events) list ->
  (int * Remon_kernel.Syscall.poll_events) list
(** Master's (user_data, events) results -> logical (fd, events), using
    variant 0's registrations. Unregistered cookies map to fd [-1]. *)

val to_variant :
  t ->
  variant:int ->
  (int * Remon_kernel.Syscall.poll_events) list ->
  (int64 * Remon_kernel.Syscall.poll_events) list
(** Logical (fd, events) -> the given variant's (user_data, events). *)
