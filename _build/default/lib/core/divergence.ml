(* Divergence verdicts: why an MVEE run was terminated (or how an attack
   was detected). *)

open Remon_kernel

type detector = By_ghumvee | By_ipmon | By_ikb

type t =
  | Args_mismatch of {
      rank : int; (* thread rank at which the divergence appeared *)
      index : int; (* syscall index on that rank *)
      expected : string; (* rendering of the majority/master call *)
      got : string;
      variant : int;
      detector : detector;
    }
  | Sequence_mismatch of {
      rank : int;
      index : int;
      calls : string list; (* what each variant issued *)
    }
  | Rendezvous_timeout of { rank : int; index : int; missing : int list }
  | Replica_crash of { variant : int; signal : int }
  | Exit_mismatch of { codes : (int * int) list (* variant, code *) }
  | Token_violation of { variant : int; call : string }
  | Shared_memory_rejected of { variant : int }

let detector_to_string = function
  | By_ghumvee -> "GHUMVEE"
  | By_ipmon -> "IP-MON"
  | By_ikb -> "IK-B"

let to_string = function
  | Args_mismatch { rank; index; expected; got; variant; detector } ->
    Printf.sprintf
      "argument divergence on thread rank %d at syscall %d (variant %d): expected %s, got %s [detected by %s]"
      rank index variant expected got
      (detector_to_string detector)
  | Sequence_mismatch { rank; index; calls } ->
    Printf.sprintf "syscall sequence divergence on rank %d at index %d: [%s]"
      rank index (String.concat "; " calls)
  | Rendezvous_timeout { rank; index; missing } ->
    Printf.sprintf
      "rendezvous timeout on rank %d at syscall %d: variants [%s] never arrived"
      rank index
      (String.concat ", " (List.map string_of_int missing))
  | Replica_crash { variant; signal } ->
    Printf.sprintf "replica %d crashed with %s" variant (Sigdefs.to_string signal)
  | Exit_mismatch { codes } ->
    Printf.sprintf "replicas exited with different codes: %s"
      (String.concat ", "
         (List.map (fun (v, c) -> Printf.sprintf "v%d=%d" v c) codes))
  | Token_violation { variant; call } ->
    Printf.sprintf
      "authorization-token violation by variant %d on %s (unmonitored execution denied)"
      variant call
  | Shared_memory_rejected { variant } ->
    Printf.sprintf "bi-directional shared memory request rejected (variant %d)" variant

(* Pretty-printer for syscalls in verdicts. *)
let render_call (c : Syscall.call) = Format.asprintf "%a" Syscall.pp_call c
