(* Shared state of one replica set ("group"): the monitors, the replication
   machinery, and the divergence verdict. Wired up by [Mvee]. *)

open Remon_kernel

type slave_wait = Wait_auto | Wait_spin_only | Wait_futex_only

type mode = {
  use_token : bool; (* IK-B authorization (off in the VARAN baseline) *)
  lockstep : bool; (* CP monitor enforces lockstep for monitored calls *)
  crash_on_mismatch : bool; (* IP-MON slaves crash intentionally on divergence *)
  per_call_condvar : bool;
      (* Section 3.7 optimization: one condition variable per RB record.
         When off (ablation), every publish pays a FUTEX_WAKE. *)
  slave_wait : slave_wait;
      (* Section 3.7: spin for calls predicted non-blocking, condvar
         otherwise. The ablations force one strategy. *)
  runahead_window : int option;
      (* how many unconsumed records the master may be ahead of the
         slowest slave. [None] = unbounded (VARAN's default); the paper
         wonders aloud what shrinking this window costs - the ablation
         bench answers it. *)
}

let remon_mode =
  {
    use_token = true;
    lockstep = true;
    crash_on_mismatch = true;
    per_call_condvar = true;
    slave_wait = Wait_auto;
    runahead_window = None;
  }

(* VARAN-like: everything replicated in-process, no lockstep, no tokens. *)
let varan_mode =
  { remon_mode with use_token = false; lockstep = false }

type group = {
  kernel : Kernel.t;
  nreplicas : int;
  policy : Policy.t;
  mode : mode;
  rb : Replication_buffer.t;
  file_map : File_map.t;
  epoll_map : Epoll_map.t;
  ikb : Ikb.t;
  shm_key : int; (* SysV key GHUMVEE recognizes as the RB segment *)
  mutable replicas : Proc.process array; (* index = variant *)
  mutable divergence : Divergence.t option;
  mutable shutdown : bool;
  mutable ipmon_calls : int;
  mutable ipmon_fallbacks : int;
}

(* SysV keys at or above this value are treated as MVEE-internal (RB / file
   map) and exempt from GHUMVEE's shared-memory rejection policy. *)
let mvee_shm_key_base = 0x5EC0DE00

let set_divergence g v = if g.divergence = None then g.divergence <- Some v

let replica_variant (p : Proc.process) =
  match p.Proc.replica_info with
  | Some { Proc.variant_index; _ } -> Some variant_index
  | None -> None
