(* System-call classification: Table 1 of the paper.

   Five cumulative spatial-exemption levels. Choosing a level exempts every
   unconditional call at that level and below from cross-process monitoring,
   plus the conditional calls whose runtime arguments satisfy the level's
   criteria (e.g. [read] is exempt at NONSOCKET_RO only when the descriptor
   is not a socket, and at SOCKET_RO regardless).

   Calls that allocate or manage process resources — fd lifecycle, memory
   mappings, thread/process control, signal handling, System V IPC — are
   always monitored by GHUMVEE, at every level. *)

open Remon_kernel

type level =
  | Base_level
  | Nonsocket_ro_level
  | Nonsocket_rw_level
  | Socket_ro_level
  | Socket_rw_level

let all_levels =
  [ Base_level; Nonsocket_ro_level; Nonsocket_rw_level; Socket_ro_level; Socket_rw_level ]

let level_rank = function
  | Base_level -> 0
  | Nonsocket_ro_level -> 1
  | Nonsocket_rw_level -> 2
  | Socket_ro_level -> 3
  | Socket_rw_level -> 4

let level_geq a b = level_rank a >= level_rank b

let level_to_string = function
  | Base_level -> "BASE_LEVEL"
  | Nonsocket_ro_level -> "NONSOCKET_RO_LEVEL"
  | Nonsocket_rw_level -> "NONSOCKET_RW_LEVEL"
  | Socket_ro_level -> "SOCKET_RO_LEVEL"
  | Socket_rw_level -> "SOCKET_RW_LEVEL"

let level_of_string = function
  | "BASE_LEVEL" | "base" -> Some Base_level
  | "NONSOCKET_RO_LEVEL" | "nonsocket_ro" -> Some Nonsocket_ro_level
  | "NONSOCKET_RW_LEVEL" | "nonsocket_rw" -> Some Nonsocket_rw_level
  | "SOCKET_RO_LEVEL" | "socket_ro" -> Some Socket_ro_level
  | "SOCKET_RW_LEVEL" | "socket_rw" -> Some Socket_rw_level
  | _ -> None

(* How a call is classified, before looking at its runtime arguments. *)
type entry =
  | Always_monitored
  | Unconditional of level
  | Conditional of level
      (* exempt at [level] subject to a runtime check; the read/write
         families additionally escalate to the socket levels when the
         descriptor is a socket *)

let classify : Sysno.t -> entry = function
  (* BASE_LEVEL: read-only calls that do not touch fds or the filesystem *)
  | Sysno.Gettimeofday | Sysno.Clock_gettime | Sysno.Time | Sysno.Getpid
  | Sysno.Gettid | Sysno.Getpgrp | Sysno.Getppid | Sysno.Getgid
  | Sysno.Getegid | Sysno.Getuid | Sysno.Geteuid | Sysno.Getcwd
  | Sysno.Getpriority | Sysno.Getrusage | Sysno.Times | Sysno.Capget
  | Sysno.Getitimer | Sysno.Sysinfo | Sysno.Uname | Sysno.Sched_yield
  | Sysno.Nanosleep | Sysno.Getpgid | Sysno.Getsid | Sysno.Getrlimit
  | Sysno.Sched_getaffinity | Sysno.Clock_getres | Sysno.Getrandom ->
    Unconditional Base_level
  | Sysno.Futex | Sysno.Ioctl | Sysno.Fcntl -> Conditional Base_level
  (* NONSOCKET_RO_LEVEL: read-only fd / filesystem queries *)
  | Sysno.Access | Sysno.Faccessat | Sysno.Lseek | Sysno.Stat | Sysno.Lstat
  | Sysno.Fstat | Sysno.Fstatat | Sysno.Getdents | Sysno.Readlink
  | Sysno.Readlinkat | Sysno.Getxattr | Sysno.Lgetxattr | Sysno.Fgetxattr
  | Sysno.Alarm | Sysno.Setitimer | Sysno.Timerfd_gettime | Sysno.Madvise
  | Sysno.Fadvise64 | Sysno.Statfs | Sysno.Fstatfs | Sysno.Getdents64
  | Sysno.Readahead | Sysno.Mincore ->
    Unconditional Nonsocket_ro_level
  | Sysno.Read | Sysno.Readv | Sysno.Pread64 | Sysno.Preadv | Sysno.Select
  | Sysno.Poll | Sysno.Pselect6 | Sysno.Ppoll ->
    Conditional Nonsocket_ro_level
  (* NONSOCKET_RW_LEVEL *)
  | Sysno.Sync | Sysno.Syncfs | Sysno.Fsync | Sysno.Fdatasync
  | Sysno.Timerfd_settime | Sysno.Msync | Sysno.Flock | Sysno.Chmod
  | Sysno.Fchmod | Sysno.Chown | Sysno.Utimensat ->
    Unconditional Nonsocket_rw_level
  | Sysno.Write | Sysno.Writev | Sysno.Pwrite64 | Sysno.Pwritev ->
    Conditional Nonsocket_rw_level
  (* SOCKET_RO_LEVEL *)
  | Sysno.Epoll_wait | Sysno.Recvfrom | Sysno.Recvmsg | Sysno.Recvmmsg
  | Sysno.Getsockname | Sysno.Getpeername | Sysno.Getsockopt ->
    Unconditional Socket_ro_level
  (* SOCKET_RW_LEVEL *)
  | Sysno.Sendto | Sysno.Sendmsg | Sysno.Sendmmsg | Sysno.Sendfile
  | Sysno.Epoll_ctl | Sysno.Setsockopt | Sysno.Shutdown ->
    Unconditional Socket_rw_level
  (* always monitored: fd lifecycle, memory, processes, signals, SysV IPC *)
  | Sysno.Open | Sysno.Openat | Sysno.Creat | Sysno.Close | Sysno.Dup
  | Sysno.Dup2 | Sysno.Dup3 | Sysno.Pipe | Sysno.Pipe2 | Sysno.Eventfd
  | Sysno.Mkdirat | Sysno.Unlinkat | Sysno.Renameat | Sysno.Link
  | Sysno.Linkat | Sysno.Symlink | Sysno.Symlinkat | Sysno.Umask
  | Sysno.Mlock | Sysno.Munlock | Sysno.Setrlimit | Sysno.Prlimit64
  | Sysno.Sched_setaffinity | Sysno.Setsid
  | Sysno.Socket | Sysno.Socketpair | Sysno.Bind
  | Sysno.Listen | Sysno.Accept | Sysno.Accept4 | Sysno.Connect
  | Sysno.Epoll_create | Sysno.Timerfd_create | Sysno.Unlink | Sysno.Rename
  | Sysno.Mkdir | Sysno.Rmdir | Sysno.Truncate | Sysno.Ftruncate | Sysno.Mmap
  | Sysno.Munmap | Sysno.Mprotect | Sysno.Mremap | Sysno.Brk | Sysno.Clone
  | Sysno.Fork | Sysno.Execve | Sysno.Exit | Sysno.Exit_group | Sysno.Wait4
  | Sysno.Kill | Sysno.Tgkill | Sysno.Rt_sigaction | Sysno.Rt_sigprocmask
  | Sysno.Rt_sigreturn | Sysno.Sigaltstack | Sysno.Pause | Sysno.Shmget
  | Sysno.Shmat | Sysno.Shmdt | Sysno.Shmctl | Sysno.Ipmon_register ->
    Always_monitored

(* The fd-sensitive calls: the level needed depends on whether the
   descriptor being operated on is a socket. *)
type fd_sensitivity = Read_family | Write_family | Not_fd_sensitive

let fd_sensitivity = function
  | Sysno.Read | Sysno.Readv | Sysno.Pread64 | Sysno.Preadv | Sysno.Select
  | Sysno.Poll | Sysno.Pselect6 | Sysno.Ppoll ->
    Read_family
  | Sysno.Write | Sysno.Writev | Sysno.Pwrite64 | Sysno.Pwritev -> Write_family
  | _ -> Not_fd_sensitive

(* The minimum spatial level at which [no] may run unmonitored, given
   whether the descriptor it operates on (if any) is a socket. [None] means
   the call is always monitored. *)
let required_level (no : Sysno.t) ~(on_socket : bool) : level option =
  match classify no with
  | Always_monitored -> None
  | Unconditional l -> Some l
  | Conditional l -> (
    match fd_sensitivity no with
    | Not_fd_sensitive -> Some l (* futex/ioctl/fcntl: op-type checked elsewhere *)
    | Read_family -> Some (if on_socket then Socket_ro_level else Nonsocket_ro_level)
    | Write_family -> Some (if on_socket then Socket_rw_level else Nonsocket_rw_level))

(* The set IP-MON can replicate at all (the paper's 67-call fast path):
   everything that is not Always_monitored. *)
let ipmon_supported =
  List.filter
    (fun no -> classify no <> Always_monitored)
    Sysno.all

(* Rows of Table 1, regenerated from the classification itself: for each
   level, the unconditional and conditional calls introduced at that level. *)
let table1 () =
  List.map
    (fun lvl ->
      let uncond =
        List.filter (fun no -> classify no = Unconditional lvl) Sysno.all
      in
      let cond =
        List.filter (fun no -> classify no = Conditional lvl) Sysno.all
      in
      (lvl, uncond, cond))
    all_levels
