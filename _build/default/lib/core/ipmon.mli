(** IP-MON: the in-process monitor (Sections 3.2-3.9, Listing 1). One
    instance per replica; IK-B forwards policy-exempt calls here with a
    one-time token, and the instance runs the MAYBE_CHECKED / CALCSIZE /
    PRECALL / POSTCALL phases. The master runs ahead of the slaves except
    when the linear buffer is full. *)

open Remon_kernel

type instance = {
  group : Context.group;
  variant : int;
  proc : Proc.process;
  mutable entry_addr : int64; (** IP-MON's executable region here *)
  mutable rb_addr : int64; (** where the RB is mapped in this replica *)
}

val invoke :
  instance ->
  Proc.thread ->
  token:int64 ->
  call:Syscall.call ->
  return:(Syscall.result -> unit) ->
  unit
(** The syscall entry point IK-B forwards to (Figure 2, steps 2-4).
    Installed into the kernel by {!init}. *)

val init : ?calls:Sysno.t list -> Context.group -> variant:int -> instance
(** Runs inside the replica (program context) before the application's
    main: maps IP-MON's code region, creates/attaches the RB and file-map
    System V segments (arbitrated by GHUMVEE), and performs the
    [ipmon_register] syscall (Section 3.5). [calls] defaults to
    {!Classification.ipmon_supported}; the VARAN baseline registers every
    call. *)
