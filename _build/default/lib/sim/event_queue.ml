(* Binary min-heap of timestamped events.

   Ties are broken by insertion sequence so that simulation runs are fully
   deterministic regardless of heap internals. *)

type 'a entry = { time : Vtime.t; seq : int; payload : 'a; mutable live : bool }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

type handle = H : 'a entry -> handle

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t =
  (* Cancelled entries still occupy heap slots; count only live ones. *)
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).live then incr n
  done;
  !n

let is_empty t = length t = 0

let before a b =
  match Vtime.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let dummy = t.heap.(0) in
    let bigger = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let add t ~time payload =
  let entry = { time; seq = t.next_seq; payload; live = true } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  H entry

let cancel (H entry) = entry.live <- false

let rec pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    if top.live then Some (top.time, top.payload) else pop t
  end

let peek_time t =
  let rec scan () =
    if t.size = 0 then None
    else if t.heap.(0).live then Some t.heap.(0).time
    else begin
      (* Drop dead entries lazily. *)
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      scan ()
    end
  in
  scan ()
