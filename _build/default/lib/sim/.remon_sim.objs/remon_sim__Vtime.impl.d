lib/sim/vtime.ml: Format Int64 Remon_util Stdlib
