lib/sim/event_queue.mli: Vtime
