(** Virtual time: 64-bit nanoseconds since simulation start. *)

type t = int64

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val of_float_ns : float -> t
val to_float_ns : t -> float
val of_float_s : float -> t
val to_float_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

val scale : t -> float -> t
(** [scale t f] multiplies a duration by a float factor. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
