(** Binary min-heap of timestamped events with deterministic tie-breaking
    (insertion order) and O(1) cancellation. *)

type 'a t

type handle

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:Vtime.t -> 'a -> handle
(** Schedules a payload; the returned handle can cancel it. *)

val cancel : handle -> unit
(** Marks an event dead; it will be skipped on pop. Idempotent. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest live event without removing it. *)
