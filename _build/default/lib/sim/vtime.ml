(* Virtual time: signed 64-bit nanoseconds since simulation start. *)

type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let s n = Int64.of_int (n * 1_000_000_000)

let of_float_ns f = Int64.of_float f
let to_float_ns t = Int64.to_float t

let of_float_s f = Int64.of_float (f *. 1e9)
let to_float_s t = Int64.to_float t /. 1e9

let add = Int64.add
let sub = Int64.sub
let compare = Int64.compare
let ( + ) = Int64.add
let ( - ) = Int64.sub
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let max a b = if Stdlib.( >= ) (Int64.compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (Int64.compare a b) 0 then a else b

let scale t f = Int64.of_float (Int64.to_float t *. f)

let pp fmt t = Format.fprintf fmt "%s" (Remon_util.Table.fmt_ns t)
let to_string t = Remon_util.Table.fmt_ns t
