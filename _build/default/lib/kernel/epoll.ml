(* epoll instance state (Section 3.9 of the paper).

   The interest list associates watched fds with the [user_data] cookie the
   application registered. Readiness is evaluated by the dispatcher, which
   can see the fd table; this module only stores interest. *)

type entry = { mutable events : Syscall.poll_events; mutable user_data : int64 }

type t = { interest : (int, entry) Hashtbl.t }

let create () = { interest = Hashtbl.create 16 }

let ctl t ~(op : Syscall.epoll_op) ~fd ~events ~user_data =
  match op with
  | Epoll_add ->
    if Hashtbl.mem t.interest fd then Error Errno.EEXIST
    else begin
      Hashtbl.replace t.interest fd { events; user_data };
      Ok ()
    end
  | Epoll_mod -> (
    match Hashtbl.find_opt t.interest fd with
    | None -> Error Errno.ENOENT
    | Some e ->
      e.events <- events;
      e.user_data <- user_data;
      Ok ())
  | Epoll_del ->
    if Hashtbl.mem t.interest fd then begin
      Hashtbl.remove t.interest fd;
      Ok ()
    end
    else Error Errno.ENOENT

let interest_list t =
  Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) t.interest []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let forget_fd t fd = Hashtbl.remove t.interest fd
