(** epoll instance state (Section 3.9): the interest list mapping watched
    fds to the application's [user_data] cookies. Readiness is evaluated by
    the dispatcher, which can see the fd table. *)

type entry = { mutable events : Syscall.poll_events; mutable user_data : int64 }

type t

val create : unit -> t

val ctl :
  t ->
  op:Syscall.epoll_op ->
  fd:int ->
  events:Syscall.poll_events ->
  user_data:int64 ->
  (unit, Errno.t) result

val interest_list : t -> (int * entry) list
(** Sorted by fd, for deterministic iteration. *)

val forget_fd : t -> int -> unit
