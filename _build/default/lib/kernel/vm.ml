(* Per-process virtual memory: a list of mapped regions with ASLR placement,
   plus a sparse word store used by futexes.

   Region *placement* is what diversity transforms act on: each replica's
   address space draws from an independent RNG stream, so the same logical
   mapping lands at different addresses in different replicas (ASLR), and
   disjoint code layouts (DCL) additionally guarantee code ranges never
   overlap across replicas. *)

open Remon_util

type backing =
  | Anon
  | Shared_anon of int (* sharing-group id (MAP_SHARED | MAP_ANONYMOUS) *)
  | File_backed of Vfs.node
  | Shm_seg of Shm.segment
  | Code
  | Stack
  | Heap
  | Ipmon_code (* IP-MON's executable region; recognized by IK-B *)

type region = {
  start : int64;
  len : int;
  mutable prot : Syscall.prot;
  backing : backing;
  tag : string; (* shown in /proc/self/maps *)
}

type t = {
  mutable regions : region list; (* sorted by start *)
  rng : Rng.t;
  words : (int64, int) Hashtbl.t; (* private futex words *)
  mutable brk_base : int64;
  mutable brk : int64;
  page_size : int;
}

let page_size = 4096

let create ~rng =
  let brk_base = 0x0000_5555_0000_0000L in
  {
    regions = [];
    rng;
    words = Hashtbl.create 64;
    brk_base;
    brk = brk_base;
    page_size;
  }

let align_up n align =
  let a = Int64.of_int align in
  Int64.mul (Int64.div (Int64.add n (Int64.sub a 1L)) a) a

let region_end r = Int64.add r.start (Int64.of_int r.len)

let overlaps a_start a_len b =
  let a_end = Int64.add a_start (Int64.of_int a_len) in
  not (Int64.compare a_end b.start <= 0 || Int64.compare (region_end b) a_start <= 0)

let fits t start len =
  Int64.compare start 0x1000L >= 0
  && Int64.compare (Int64.add start (Int64.of_int len)) 0x0000_7FFF_FFFF_F000L <= 0
  && not (List.exists (overlaps start len) t.regions)

let insert t r =
  t.regions <-
    List.sort (fun a b -> Int64.compare a.start b.start) (r :: t.regions)

(* 28 bits of mmap entropy (Linux default for x86-64 is 28); the paper
   quotes 24 bits of entropy for the 16 MiB RB's placement. *)
let random_addr t =
  let page = Int64.of_int t.page_size in
  let slot = Int64.of_int (Rng.int t.rng (1 lsl 28)) in
  Int64.add 0x0000_2000_0000_0000L (Int64.mul slot page)

let map t ~len ~prot ~backing ~tag =
  let len = Int64.to_int (align_up (Int64.of_int (max 1 len)) t.page_size) in
  let rec try_place attempts =
    if attempts = 0 then Error Errno.ENOMEM
    else
      let start = random_addr t in
      if fits t start len then begin
        let r = { start; len; prot; backing; tag } in
        insert t r;
        Ok r
      end
      else try_place (attempts - 1)
  in
  try_place 64

(* Places a region at an exact address; used by DCL to give each replica a
   disjoint, pre-chosen code range. *)
let map_fixed t ~start ~len ~prot ~backing ~tag =
  let len = Int64.to_int (align_up (Int64.of_int (max 1 len)) t.page_size) in
  if fits t start len then begin
    let r = { start; len; prot; backing; tag } in
    insert t r;
    Ok r
  end
  else Error Errno.EEXIST

let find_region t addr =
  List.find_opt
    (fun r ->
      Int64.compare r.start addr <= 0 && Int64.compare addr (region_end r) < 0)
    t.regions

(* Unmap of exact whole regions only — the simulator does not split
   regions, which is all the workloads and monitors require. *)
let unmap t ~addr ~len:_ =
  match find_region t addr with
  | Some r when Int64.equal r.start addr ->
    t.regions <- List.filter (fun r' -> r' != r) t.regions;
    Ok ()
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EINVAL

let protect t ~addr ~len:_ ~prot =
  match find_region t addr with
  | Some r ->
    r.prot <- prot;
    Ok ()
  | None -> Error Errno.EINVAL

let set_brk t newbrk =
  if newbrk = 0 then Int64.to_int (Int64.sub t.brk t.brk_base)
  else begin
    t.brk <- Int64.add t.brk_base (Int64.of_int newbrk);
    newbrk
  end

(* Futex word access. Words in shm-backed regions resolve to the segment's
   shared store so that futexes in the replication buffer work across
   replicas; all other addresses are process-private. *)
let read_word t addr =
  match find_region t addr with
  | Some { backing = Shm_seg seg; start; _ } ->
    Shm.read_word seg ~offset:(Int64.to_int (Int64.sub addr start))
  | _ -> (
    match Hashtbl.find_opt t.words addr with Some v -> v | None -> 0)

let write_word t addr v =
  match find_region t addr with
  | Some { backing = Shm_seg seg; start; _ } ->
    Shm.write_word seg ~offset:(Int64.to_int (Int64.sub addr start)) v
  | _ -> Hashtbl.replace t.words addr v

(* Futex queues must be shared across processes when the word lives in
   shared memory: the key identifies the physical backing. *)
type futex_key = Private of int * int64 | Shared of int * int

let futex_key t ~space_id addr =
  match find_region t addr with
  | Some { backing = Shm_seg seg; start; _ } ->
    Shared (seg.Shm.shmid, Int64.to_int (Int64.sub addr start))
  | _ -> Private (space_id, addr)

let prot_to_string (p : Syscall.prot) =
  Printf.sprintf "%c%c%c"
    (if p.pr then 'r' else '-')
    (if p.pw then 'w' else '-')
    (if p.px then 'x' else '-')

(* /proc/self/maps content. [hide] lets GHUMVEE filter IP-MON's regions
   (Section 3.1: preventing RB discovery through the maps interface). *)
let maps_text ?(hide = fun _ -> false) t =
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
      if not (hide r) then
        Buffer.add_string buf
          (Printf.sprintf "%012Lx-%012Lx %s %s\n" r.start (region_end r)
             (prot_to_string r.prot) r.tag))
    t.regions;
  Buffer.contents buf
