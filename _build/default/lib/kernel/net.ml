(* Simulated stream-socket network.

   Connections are pairs of unidirectional channels. Data "in flight" is
   committed to the peer's receive queue by a kernel event scheduled
   [latency + wire time] after the send — this is how the netem-style link
   latency of the paper's three server scenarios is modeled. *)

type stream = {
  sid : int;
  mutable local_port : int;
  mutable peer_port : int;
  incoming : Bytestream.t; (* committed, readable data *)
  mutable peer : stream option; (* None once the peer endpoint is closed *)
  mutable rd_shut : bool;
  mutable wr_shut : bool;
  mutable in_flight : int; (* bytes sent but not yet committed *)
  mutable connected : bool;
  mutable local : bool; (* same-host pair (socketpair): no link latency *)
}

type listener = {
  port : int;
  mutable backlog : int;
  pending : stream Queue.t; (* server-side endpoints awaiting accept *)
  mutable closed : bool;
}

type t = {
  mutable latency : Remon_sim.Vtime.t; (* one-way propagation delay *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_sid : int;
  mutable next_ephemeral : int;
}

let create ?(latency = Remon_sim.Vtime.us 50) () =
  {
    latency;
    listeners = Hashtbl.create 8;
    next_sid = 1;
    next_ephemeral = 32_768;
  }

let set_latency t l = t.latency <- l

let fresh_stream t =
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  {
    sid;
    local_port = 0;
    peer_port = 0;
    incoming = Bytestream.create ();
    peer = None;
    rd_shut = false;
    wr_shut = false;
    in_flight = 0;
    connected = false;
    local = false;
  }

let listen t ~port ~backlog =
  if Hashtbl.mem t.listeners port then Error Errno.EADDRINUSE
  else begin
    let l = { port; backlog; pending = Queue.create (); closed = false } in
    Hashtbl.replace t.listeners port l;
    Ok l
  end

let find_listener t ~port =
  match Hashtbl.find_opt t.listeners port with
  | Some l when not l.closed -> Some l
  | _ -> None

let close_listener t l =
  l.closed <- true;
  Hashtbl.remove t.listeners l.port

(* Builds the two endpoints of a connection; the caller (dispatcher) is
   responsible for delaying [commit_pending] and the listener enqueue by the
   link latency. *)
let make_pair t ~client_port ~server_port =
  let client = fresh_stream t in
  let server = fresh_stream t in
  client.peer <- Some server;
  server.peer <- Some client;
  client.local_port <- client_port;
  client.peer_port <- server_port;
  server.local_port <- server_port;
  server.peer_port <- client_port;
  (client, server)

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- t.next_ephemeral + 1;
  p

(* Sender side: account in-flight bytes; the kernel commits them later. *)
let send_start stream data =
  match stream.peer with
  | None -> Error Errno.EPIPE
  | Some _ when stream.wr_shut -> Error Errno.EPIPE
  | Some peer ->
    peer.in_flight <- peer.in_flight + String.length data;
    Ok peer

(* Receiver side: invoked by the scheduled delivery event. *)
let commit stream data =
  stream.in_flight <- stream.in_flight - String.length data;
  Bytestream.push stream.incoming data

let peer_gone stream = stream.peer = None

let readable stream =
  Bytestream.length stream.incoming > 0 || stream.rd_shut || peer_gone stream

let at_eof stream =
  Bytestream.length stream.incoming = 0
  && stream.in_flight = 0
  && (peer_gone stream || stream.rd_shut)

let recv stream count = Bytestream.pull stream.incoming count

(* Endpoint close: detach from peer so the peer observes EOF / EPIPE. *)
let close_stream stream =
  (match stream.peer with Some p -> p.peer <- None | None -> ());
  stream.peer <- None;
  stream.rd_shut <- true;
  stream.wr_shut <- true
