(* System V shared memory segments.

   ReMon uses SysV IPC to establish IP-MON's replication buffer (Section
   3.2) and the read-only file map (Section 3.6). A segment carries an
   extensible [payload] so higher layers can attach typed shared structures
   (the RB itself) without the kernel knowing their shape, plus a word store
   for futexes located in shared memory. *)

type payload = ..

type segment = {
  shmid : int;
  key : int;
  size : int;
  mutable nattach : int;
  mutable rm_pending : bool; (* IPC_RMID called; destroyed at last detach *)
  mutable payload : payload option;
  words : (int, int) Hashtbl.t; (* offset -> value, for futexes in shm *)
}

type t = { mutable next_id : int; segments : (int, segment) Hashtbl.t }

let create () = { next_id = 1; segments = Hashtbl.create 8 }

let get t ~key ~size ~create:do_create =
  let existing =
    Hashtbl.fold
      (fun _ seg acc ->
        if seg.key = key && key <> 0 && not seg.rm_pending then Some seg
        else acc)
      t.segments None
  in
  match existing with
  | Some seg -> if size > seg.size then Error Errno.EINVAL else Ok seg
  | None ->
    if not do_create then Error Errno.ENOENT
    else begin
      let shmid = t.next_id in
      t.next_id <- t.next_id + 1;
      let seg =
        {
          shmid;
          key;
          size;
          nattach = 0;
          rm_pending = false;
          payload = None;
          words = Hashtbl.create 16;
        }
      in
      Hashtbl.replace t.segments shmid seg;
      Ok seg
    end

let find t shmid =
  match Hashtbl.find_opt t.segments shmid with
  | Some seg when not seg.rm_pending -> Ok seg
  | Some _ -> Error Errno.EIDRM
  | None -> Error Errno.EINVAL

let attach seg = seg.nattach <- seg.nattach + 1

let detach t seg =
  seg.nattach <- max 0 (seg.nattach - 1);
  if seg.rm_pending && seg.nattach = 0 then Hashtbl.remove t.segments seg.shmid

let remove t seg =
  seg.rm_pending <- true;
  if seg.nattach = 0 then Hashtbl.remove t.segments seg.shmid

let read_word seg ~offset =
  match Hashtbl.find_opt seg.words offset with Some v -> v | None -> 0

let write_word seg ~offset v = Hashtbl.replace seg.words offset v
