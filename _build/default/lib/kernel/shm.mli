(** System V shared memory segments. ReMon uses SysV IPC for IP-MON's
    replication buffer and the read-only file map; a segment carries an
    extensible [payload] so higher layers can attach typed shared
    structures, plus a word store for futexes in shared memory. *)

type payload = ..

type segment = {
  shmid : int;
  key : int;
  size : int;
  mutable nattach : int;
  mutable rm_pending : bool;
  mutable payload : payload option;
  words : (int, int) Hashtbl.t; (** offset -> value, for futexes *)
}

type t

val create : unit -> t

val get : t -> key:int -> size:int -> create:bool -> (segment, Errno.t) result
(** shmget: finds by key or creates. EINVAL when asking for more than an
    existing segment's size. *)

val find : t -> int -> (segment, Errno.t) result
val attach : segment -> unit

val detach : t -> segment -> unit
(** Destroys the segment at the last detach if it was RMID'd. *)

val remove : t -> segment -> unit
(** IPC_RMID: mark for destruction. *)

val read_word : segment -> offset:int -> int
val write_word : segment -> offset:int -> int -> unit
