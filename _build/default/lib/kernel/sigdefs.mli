(** POSIX signal numbers and default dispositions. *)

val sighup : int
val sigint : int
val sigquit : int
val sigill : int
val sigabrt : int
val sigkill : int
val sigusr1 : int
val sigsegv : int
val sigusr2 : int
val sigpipe : int
val sigalrm : int
val sigterm : int
val sigchld : int
val sigvtalrm : int

type default_disposition = Terminate | Ignore_sig | Core_dump

val default_of : int -> default_disposition
val to_string : int -> string

val catchable : int -> bool
(** SIGKILL can be neither caught nor blocked. *)

val synchronous : int -> bool
(** Synchronous signals (SIGSEGV/SIGILL/SIGABRT) are direct results of the
    instruction stream and are delivered immediately; asynchronous ones are
    deferred to MVEE rendezvous points (Section 2.2). *)
