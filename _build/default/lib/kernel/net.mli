(** Simulated stream-socket network. Connections are pairs of
    unidirectional channels; data in flight is committed to the peer's
    receive queue by a kernel event scheduled one link latency after the
    send (the netem-style latency of the server scenarios). *)

type stream = {
  sid : int;
  mutable local_port : int;
  mutable peer_port : int;
  incoming : Bytestream.t;
  mutable peer : stream option; (** [None] once the peer closed *)
  mutable rd_shut : bool;
  mutable wr_shut : bool;
  mutable in_flight : int;
  mutable connected : bool;
  mutable local : bool; (** same-host pair: memcpy cost, ~no latency *)
}

type listener = {
  port : int;
  mutable backlog : int;
  pending : stream Queue.t;
  mutable closed : bool;
}

type t = {
  mutable latency : Remon_sim.Vtime.t; (** one-way propagation delay *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_sid : int;
  mutable next_ephemeral : int;
}

val create : ?latency:Remon_sim.Vtime.t -> unit -> t
val set_latency : t -> Remon_sim.Vtime.t -> unit
val fresh_stream : t -> stream
val listen : t -> port:int -> backlog:int -> (listener, Errno.t) result
val find_listener : t -> port:int -> listener option
val close_listener : t -> listener -> unit
val make_pair : t -> client_port:int -> server_port:int -> stream * stream
val ephemeral_port : t -> int

val send_start : stream -> string -> (stream, Errno.t) result
(** Accounts in-flight bytes; returns the peer whose queue the dispatcher
    must commit the data to after the propagation delay. *)

val commit : stream -> string -> unit
val peer_gone : stream -> bool
val readable : stream -> bool
val at_eof : stream -> bool
val recv : stream -> int -> string
val close_stream : stream -> unit
