(* POSIX signal numbers and default dispositions. *)

let sighup = 1
let sigint = 2
let sigquit = 3
let sigill = 4
let sigabrt = 6
let sigkill = 9
let sigusr1 = 10
let sigsegv = 11
let sigusr2 = 12
let sigpipe = 13
let sigalrm = 14
let sigterm = 15
let sigchld = 17
let sigvtalrm = 26

type default_disposition = Terminate | Ignore_sig | Core_dump

let default_of = function
  | 17 -> Ignore_sig
  | 4 | 6 | 11 -> Core_dump
  | _ -> Terminate

let to_string = function
  | 1 -> "SIGHUP"
  | 2 -> "SIGINT"
  | 3 -> "SIGQUIT"
  | 4 -> "SIGILL"
  | 6 -> "SIGABRT"
  | 9 -> "SIGKILL"
  | 10 -> "SIGUSR1"
  | 11 -> "SIGSEGV"
  | 12 -> "SIGUSR2"
  | 13 -> "SIGPIPE"
  | 14 -> "SIGALRM"
  | 15 -> "SIGTERM"
  | 17 -> "SIGCHLD"
  | 26 -> "SIGVTALRM"
  | n -> Printf.sprintf "SIG%d" n

(* SIGKILL can be neither caught nor blocked. *)
let catchable n = n <> sigkill

(* Synchronous signals are direct results of the executing instruction
   stream and may be delivered immediately to a single replica (Section
   2.2); asynchronous ones must be deferred to a rendezvous point. *)
let synchronous n = n = sigsegv || n = sigill || n = sigabrt
