(** Unix error codes used by the simulated kernel. [EKEYREJECTED] is the
    code IK-B surfaces when an authorization token fails to verify. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EPIPE
  | ERANGE
  | ENOSYS
  | ENOTEMPTY
  | ELOOP
  | ENOTSOCK
  | EDESTADDRREQ
  | EMSGSIZE
  | EPROTONOSUPPORT
  | EOPNOTSUPP
  | EADDRINUSE
  | EADDRNOTAVAIL
  | ENETUNREACH
  | ECONNABORTED
  | ECONNRESET
  | ENOBUFS
  | EISCONN
  | ENOTCONN
  | ETIMEDOUT
  | ECONNREFUSED
  | EALREADY
  | EINPROGRESS
  | ECHILD
  | EDEADLK
  | ENAMETOOLONG
  | EIDRM
  | ETIME
  | EREMOTEIO
  | EKEYREJECTED (* used by IK-B when an authorization token fails to verify *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
