(** FIFO byte stream backing pipes and socket receive queues. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> string -> unit
(** Appends bytes at the back. Empty strings are ignored. *)

val pull : t -> int -> string
(** [pull t n] removes and returns up to [n] bytes from the front. *)

val peek : t -> int -> string
(** Like {!pull} without consuming. *)

val clear : t -> unit
