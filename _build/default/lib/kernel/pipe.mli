(** Anonymous pipe: bounded FIFO with reader/writer reference counting.
    Blocking is implemented by the dispatcher; this module is pure state. *)

type t = {
  id : int;
  capacity : int;
  data : Bytestream.t;
  mutable readers : int;
  mutable writers : int;
}

val default_capacity : int
val create : ?capacity:int -> unit -> t
val bytes_available : t -> int
val space_available : t -> int
val write_closed : t -> bool
val read_closed : t -> bool

val write : t -> string -> int
(** Returns the number of bytes accepted (short write when nearly full). *)

val read : t -> int -> string
