(** Per-process virtual memory: mapped regions with ASLR placement plus the
    sparse word store futexes operate on. Region placement is what the
    diversity transforms act on. *)

open Remon_util

type backing =
  | Anon
  | Shared_anon of int
  | File_backed of Vfs.node
  | Shm_seg of Shm.segment
  | Code
  | Stack
  | Heap
  | Ipmon_code (** IP-MON's executable region; recognized by IK-B *)

type region = {
  start : int64;
  len : int;
  mutable prot : Syscall.prot;
  backing : backing;
  tag : string; (** shown in /proc/self/maps *)
}

type t = {
  mutable regions : region list; (** sorted by start *)
  rng : Rng.t;
  words : (int64, int) Hashtbl.t;
  mutable brk_base : int64;
  mutable brk : int64;
  page_size : int;
}

val page_size : int
val create : rng:Rng.t -> t
val region_end : region -> int64

val map :
  t -> len:int -> prot:Syscall.prot -> backing:backing -> tag:string ->
  (region, Errno.t) result
(** Randomized (ASLR) placement: 28 bits of page entropy. *)

val map_fixed :
  t -> start:int64 -> len:int -> prot:Syscall.prot -> backing:backing ->
  tag:string -> (region, Errno.t) result
(** Exact placement; used by DCL's disjoint code windows. *)

val find_region : t -> int64 -> region option
val unmap : t -> addr:int64 -> len:int -> (unit, Errno.t) result
val protect : t -> addr:int64 -> len:int -> prot:Syscall.prot -> (unit, Errno.t) result
val set_brk : t -> int -> int

val read_word : t -> int64 -> int
(** Words in shm-backed regions resolve to the shared segment store (so
    futexes in the RB work across replicas); others are process-private. *)

val write_word : t -> int64 -> int -> unit

type futex_key = Private of int * int64 | Shared of int * int

val futex_key : t -> space_id:int -> int64 -> futex_key
(** Identifies the physical backing of a futex word. *)

val maps_text : ?hide:(region -> bool) -> t -> string
(** /proc/self/maps content; [hide] lets GHUMVEE filter IP-MON's and the
    RB's regions (Section 3.6). *)
