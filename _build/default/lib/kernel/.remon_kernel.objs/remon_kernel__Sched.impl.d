lib/kernel/sched.ml: Effect Event_queue List Proc Remon_sim Syscall Vtime
