lib/kernel/pipe.ml: Bytestream String
