lib/kernel/vm.ml: Buffer Errno Hashtbl Int64 List Printf Remon_util Rng Shm Syscall Vfs
