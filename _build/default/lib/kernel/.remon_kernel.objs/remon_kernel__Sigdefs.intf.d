lib/kernel/sigdefs.mli:
