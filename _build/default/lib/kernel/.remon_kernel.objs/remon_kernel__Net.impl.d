lib/kernel/net.ml: Bytestream Errno Hashtbl Queue Remon_sim String
