lib/kernel/syscall.ml: Errno Format List String Sysno
