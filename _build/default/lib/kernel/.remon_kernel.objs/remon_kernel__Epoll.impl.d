lib/kernel/epoll.ml: Errno Hashtbl List Syscall
