lib/kernel/shm.ml: Errno Hashtbl
