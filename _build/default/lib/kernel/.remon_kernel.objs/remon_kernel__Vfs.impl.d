lib/kernel/vfs.ml: Buffer Bytes Errno Hashtbl List Result String
