lib/kernel/proc.ml: Epoll Event_queue Hashtbl Int List Net Pipe Printf Queue Remon_sim Set Syscall Sysno Vfs Vm Vtime
