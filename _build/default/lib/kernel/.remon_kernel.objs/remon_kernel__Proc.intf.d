lib/kernel/proc.mli: Epoll Event_queue Hashtbl Net Pipe Queue Remon_sim Set Syscall Sysno Vfs Vm Vtime
