lib/kernel/kernel.ml: Dispatch Hashtbl Kstate List Option Printf Proc Queue Remon_sim Remon_util Rng Sched Vfs Vm Vtime
