lib/kernel/net.mli: Bytestream Errno Hashtbl Queue Remon_sim
