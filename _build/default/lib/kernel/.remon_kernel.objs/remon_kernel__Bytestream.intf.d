lib/kernel/bytestream.mli:
