lib/kernel/vfs.mli: Buffer Errno Hashtbl
