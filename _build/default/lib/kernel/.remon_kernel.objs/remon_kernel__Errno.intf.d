lib/kernel/errno.mli: Format
