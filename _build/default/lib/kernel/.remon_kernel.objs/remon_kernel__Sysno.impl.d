lib/kernel/sysno.ml: Format Set Stdlib
