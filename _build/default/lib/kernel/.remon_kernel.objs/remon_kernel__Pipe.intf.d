lib/kernel/pipe.mli: Bytestream
