lib/kernel/bytestream.ml: Buffer Queue String
