lib/kernel/errno.ml: Format
