lib/kernel/shm.mli: Errno Hashtbl
