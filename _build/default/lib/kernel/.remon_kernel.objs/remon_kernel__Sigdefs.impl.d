lib/kernel/sigdefs.ml: Printf
