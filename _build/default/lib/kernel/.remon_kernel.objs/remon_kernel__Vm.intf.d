lib/kernel/vm.mli: Errno Hashtbl Remon_util Rng Shm Syscall Vfs
