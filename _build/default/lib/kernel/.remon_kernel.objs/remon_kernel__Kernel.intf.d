lib/kernel/kernel.mli: Cost_model Kstate Net Proc Remon_sim Remon_util Rng Sched Shm Syscall Vfs Vtime
