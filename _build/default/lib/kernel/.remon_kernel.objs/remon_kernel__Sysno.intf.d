lib/kernel/sysno.mli: Format Set
