lib/kernel/kstate.ml: Cost_model Hashtbl Net Printf Proc Queue Remon_sim Remon_util Rng Sched Shm Syscall Sysno Vfs Vm Vtime
