lib/kernel/syscall.mli: Errno Format Sysno
