lib/kernel/sched.mli: Effect Event_queue Proc Remon_sim Syscall Vtime
