lib/kernel/epoll.mli: Errno Syscall
