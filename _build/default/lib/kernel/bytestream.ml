(* FIFO byte stream used as the backing store for pipes and socket receive
   queues. Strings are stored in arrival order; [pull] consumes from the
   front without copying more than it returns. *)

type t = {
  chunks : string Queue.t;
  mutable front_off : int; (* consumed prefix of the front chunk *)
  mutable length : int;
}

let create () = { chunks = Queue.create (); front_off = 0; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let push t s =
  if String.length s > 0 then begin
    Queue.push s t.chunks;
    t.length <- t.length + String.length s
  end

let pull t n =
  let n = min n t.length in
  if n = 0 then ""
  else begin
    let buf = Buffer.create n in
    let remaining = ref n in
    while !remaining > 0 do
      let front = Queue.peek t.chunks in
      let avail = String.length front - t.front_off in
      let take = min avail !remaining in
      Buffer.add_substring buf front t.front_off take;
      remaining := !remaining - take;
      if take = avail then begin
        ignore (Queue.pop t.chunks);
        t.front_off <- 0
      end
      else t.front_off <- t.front_off + take
    done;
    t.length <- t.length - n;
    Buffer.contents buf
  end

let peek t n =
  let n = min n t.length in
  if n = 0 then ""
  else begin
    let buf = Buffer.create n in
    let remaining = ref n in
    let off = ref t.front_off in
    (try
       Queue.iter
         (fun chunk ->
           if !remaining > 0 then begin
             let avail = String.length chunk - !off in
             let take = min avail !remaining in
             Buffer.add_substring buf chunk !off take;
             remaining := !remaining - take;
             off := 0
           end
           else raise Exit)
         t.chunks
     with Exit -> ());
    Buffer.contents buf
  end

let clear t =
  Queue.clear t.chunks;
  t.front_off <- 0;
  t.length <- 0
