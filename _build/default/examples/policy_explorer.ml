(* Policy explorer: sweep the five spatial exemption levels and the
   temporal policy over a syscall-dense workload, and watch where each
   call class lands.

     dune exec examples/policy_explorer.exe *)

open Remon_core
open Remon_util
open Remon_workloads

let profile =
  Profile.make ~name:"explorer" ~threads:4 ~density_hz:80_000. ~calls:2500
    ~mix:
      Profile.[
        (0.3, Op_read_file 1024);
        (0.2, Op_write_file 1024);
        (0.2, Op_sock_rw 512);
        (0.15, Op_gettime);
        (0.1, Op_stat);
        (0.05, Op_open_close);
      ]
    ~description:"mixed file/socket/time workload" ()

let () =
  print_endline "-- spatial + temporal policy exploration --\n";
  Printf.printf "workload: %s, %d worker threads, ~%.0f syscalls/s/thread\n\n"
    profile.Profile.description profile.Profile.threads profile.Profile.density_hz;
  let t =
    Table.create ~title:"spatial exemption levels (2 replicas)"
      ~header:[ "policy"; "normalized time"; "IP-MON calls"; "monitored"; "fallbacks" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let native = Runner.run_profile profile (Runner.cfg_native ()) in
  let base = Remon_sim.Vtime.to_float_ns native.Runner.duration in
  let row label config =
    let r = Runner.run_profile profile config in
    let o = r.Runner.outcome in
    Table.add_row t
      [
        label;
        Table.fmt_ratio (Remon_sim.Vtime.to_float_ns r.Runner.duration /. base);
        string_of_int o.Mvee.ipmon_fastpath;
        string_of_int o.Mvee.monitored;
        string_of_int o.Mvee.ipmon_fallbacks;
      ]
  in
  row "monitor everything (GHUMVEE)" (Runner.cfg_ghumvee ());
  List.iter
    (fun lvl ->
      row (Classification.level_to_string lvl) (Runner.cfg_remon lvl))
    Classification.all_levels;
  Table.print t;
  print_newline ();
  let t2 =
    Table.create
      ~title:"temporal exemption on top of BASE_LEVEL (stochastic, Section 3.4)"
      ~header:[ "exempt probability"; "normalized time"; "IP-MON calls" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun prob ->
      let policy =
        Policy.with_temporal
          (Policy.spatial Classification.Base_level)
          { Policy.default_temporal with Policy.exempt_probability = prob }
      in
      let config = { (Runner.cfg_remon Classification.Base_level) with Mvee.policy } in
      let r = Runner.run_profile profile config in
      Table.add_row t2
        [
          Printf.sprintf "%.0f%%" (prob *. 100.);
          Table.fmt_ratio (Remon_sim.Vtime.to_float_ns r.Runner.duration /. base);
          string_of_int r.Runner.outcome.Mvee.ipmon_fastpath;
        ])
    [ 0.0; 0.5; 0.9 ];
  Table.print t2;
  print_newline ();
  print_endline
    "Each level unlocks its call class: file reads at NONSOCKET_RO, file\n\
     writes at NONSOCKET_RW, socket reads/writes at the SOCKET levels. The\n\
     temporal policy stochastically exempts repeatedly-approved calls, an\n\
     orthogonal dial on the same trade-off."
