(* Server replication: an epoll web server behind an MVEE, driven by a
   keep-alive client over links of different latency.

     dune exec examples/server_replication.exe

   Reproduces the paper's core server result in miniature: cross-process
   monitoring of every call is expensive at datacenter latencies, but the
   hybrid design's overhead vanishes once realistic network latency hides
   the server-side cost. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let () =
  print_endline "-- replicated web server under client load --\n";
  let server = Servers.nginx_wrk in
  let client = Clients.wrk ~concurrency:24 ~total_requests:480 () in
  let t =
    Table.create ~title:"client-observed overhead vs native (nginx-like, wrk-like load)"
      ~header:[ "configuration"; "0.1 ms link"; "2 ms link"; "5 ms link" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let measure config =
    List.map
      (fun latency ->
        Table.fmt_pct (Runner.server_overhead ~latency ~server ~client config))
      [ Vtime.us 100; Vtime.ms 2; Vtime.ms 5 ]
  in
  Table.add_row t ("GHUMVEE only (2 replicas)" :: measure (Runner.cfg_ghumvee ()));
  List.iter
    (fun n ->
      Table.add_row t
        (Printf.sprintf "ReMon SOCKET_RW (%d replicas)" n
        :: measure (Runner.cfg_remon ~nreplicas:n Classification.Socket_rw_level)))
    [ 2; 4; 7 ];
  Table.add_row t ("ReMon NONSOCKET_RW (2 replicas)"
    :: measure (Runner.cfg_remon Classification.Nonsocket_rw_level));
  Table.add_row t ("VARAN baseline (2 replicas)" :: measure (Runner.cfg_varan ()));
  Table.print t;
  print_newline ();
  print_endline
    "Note how socket-heavy servers need the SOCKET levels to benefit, how\n\
     every configuration converges to ~0% once the link latency dominates,\n\
     and how overhead grows only mildly from 2 to 7 replicas."
