examples/attack_detection.mli:
