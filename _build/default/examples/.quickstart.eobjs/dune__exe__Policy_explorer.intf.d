examples/policy_explorer.mli:
