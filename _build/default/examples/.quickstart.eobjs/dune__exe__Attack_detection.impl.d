examples/attack_detection.ml: Attack Divergence Diversity List Mvee Printf Remon_core Remon_util Table
