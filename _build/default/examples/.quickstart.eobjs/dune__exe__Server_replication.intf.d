examples/server_replication.mli:
