examples/quickstart.mli:
