examples/policy_explorer.ml: Classification List Mvee Policy Printf Profile Remon_core Remon_sim Remon_util Remon_workloads Runner Table
