examples/quickstart.ml: Api Classification Divergence Kernel List Mvee Policy Printf Remon_core Remon_kernel Remon_sim Remon_workloads String Vfs
