(* Attack detection: stage the Section 4 attack scenarios against ReMon and
   against the VARAN-style baseline, and compare what happens.

     dune exec examples/attack_detection.exe

   The contrast to look for: under ReMon a divergent syscall is *prevented*
   (lockstep compares arguments before the master executes), while under
   VARAN the master runs ahead, so the malicious call takes effect and is
   only detected afterwards. *)

open Remon_core
open Remon_util

let show_reports title reports =
  Printf.printf "%s\n" title;
  let t =
    Table.create ~title:""
      ~header:[ "scenario"; "malicious effect?"; "detected?"; "notes" ]
      ()
  in
  List.iter
    (fun (r : Attack.report) ->
      Table.add_row t
        [
          r.Attack.scenario;
          (if r.Attack.attack_effect then "YES (damage done)" else "no (contained)");
          (match r.Attack.detected with
          | Some v -> Divergence.to_string v
          | None -> "nothing observed");
          r.Attack.notes;
        ])
    reports;
  Table.print t;
  print_newline ()

let () =
  print_endline "-- attack scenarios vs. MVEE configurations --\n";
  let remon = { Mvee.default_config with Mvee.backend = Mvee.Remon } in
  show_reports "ReMon (hybrid, diversified replicas, DCL):"
    (Attack.all_scenarios ~config:remon ());
  let varan = { Mvee.default_config with Mvee.backend = Mvee.Varan } in
  show_reports "VARAN-style baseline (in-process only, master runs ahead):"
    [
      Attack.divergent_syscall ~config:varan ();
      Attack.rb_discovery ~config:varan ();
    ];
  let undiversified =
    {
      remon with
      Mvee.diversity = { Diversity.default with Diversity.aslr = false; dcl = false };
    }
  in
  show_reports "ReMon with diversity disabled (consistent compromise):"
    [ Attack.payload_spray ~config:undiversified () ];
  print_endline
    "Summary: ReMon contains every scenario; VARAN detects the divergent call\n\
     only after it executed; without diversity, a payload that works in one\n\
     replica works in all of them and nothing diverges — diversity is what\n\
     turns exploitation into observable divergence."
