(* Quickstart: run a small program under ReMon with two diversified
   replicas and look at what the MVEE did.

     dune exec examples/quickstart.exe

   The program below is ordinary POSIX-style code written against the
   simulated kernel's syscall API. [Mvee.launch] runs one copy per replica;
   GHUMVEE monitors the sensitive calls in lockstep while IP-MON replicates
   the innocuous ones in-process. *)

open Remon_kernel
open Remon_core
open Remon_workloads

(* The "application": creates a log file, queries the time, appends lines,
   and reads its own output back. *)
let app (env : Mvee.env) =
  let fd = Api.create_file "/tmp/quickstart.log" in
  for i = 1 to 5 do
    let now = Api.gettimeofday () in
    let line = Printf.sprintf "entry %d at t=%Ldns (pid %d)\n" i now (Api.getpid ()) in
    ignore (Api.write fd line);
    Api.compute_us 50
  done;
  ignore (Api.lseek fd 0);
  let contents = Api.read fd 4096 in
  (* every replica sees identical input: print only from the master *)
  if env.Mvee.variant = 0 then
    Printf.printf "replica 0 read back %d bytes of its log\n"
      (String.length contents);
  Api.close fd

let () =
  print_endline "-- quickstart: one program, two replicas, one set of effects --\n";
  let kernel = Kernel.create () in
  Kernel.enable_tracing kernel;
  let config =
    {
      Mvee.default_config with
      Mvee.backend = Mvee.Remon;
      nreplicas = 2;
      policy = Policy.spatial Classification.Nonsocket_rw_level;
    }
  in
  let handle = Mvee.launch kernel config ~name:"quickstart" ~body:app in
  Kernel.run kernel;
  let o = Mvee.finish handle in
  Printf.printf "\nvirtual runtime        : %s\n" (Remon_sim.Vtime.to_string o.Mvee.duration);
  Printf.printf "verdict                : %s\n"
    (match o.Mvee.verdict with
    | None -> "clean run, no divergence"
    | Some v -> Divergence.to_string v);
  Printf.printf "system calls issued    : %d\n" o.Mvee.syscalls;
  Printf.printf "  monitored (lockstep) : %d\n" o.Mvee.monitored;
  Printf.printf "  IP-MON fast path     : %d\n" o.Mvee.ipmon_fastpath;
  Printf.printf "  ptrace stops         : %d\n" o.Mvee.ptrace_stops;
  Printf.printf "replication records    : %d (resets: %d)\n" o.Mvee.rb_records o.Mvee.rb_resets;
  Printf.printf "tokens granted/rejected: %d/%d\n" o.Mvee.tokens_granted o.Mvee.tokens_rejected;
  (* a peek at the syscall routing IK-B performed *)
  let trace = Kernel.trace kernel in
  Printf.printf "\nfirst syscalls, as routed by IK-B (of %d traced):\n"
    (List.length trace);
  List.iteri (fun i line -> if i < 8 then Printf.printf "  %s\n" line) trace;
  print_newline ();
  (* the externally visible effect happened exactly once *)
  match Vfs.resolve (Kernel.vfs kernel) "/tmp/quickstart.log" with
  | Ok node ->
    Printf.printf "log file size on host  : %d bytes (written once, not twice)\n"
      (Vfs.file_size node)
  | Error _ -> print_endline "log file missing?!"
