(* Table 1: the spatial exemption levels, regenerated from the
   classification code itself. *)

open Remon_kernel
open Remon_core
open Remon_util

let wrap width names =
  let rec go line acc = function
    | [] -> List.rev (if line = "" then acc else line :: acc)
    | name :: rest ->
      let candidate = if line = "" then name else line ^ ", " ^ name in
      if String.length candidate > width then go name (line :: acc) rest
      else go candidate acc rest
  in
  go "" [] names

let run () =
  print_endline "=== Table 1: monitor levels for spatial system call exemption ===";
  print_endline "(regenerated from Classification.classify)\n";
  List.iter
    (fun (lvl, uncond, cond) ->
      Printf.printf "%s\n" (Classification.level_to_string lvl);
      let show label calls =
        if calls <> [] then begin
          Printf.printf "  %s:\n" label;
          List.iter
            (fun line -> Printf.printf "    %s\n" line)
            (wrap 68 (List.map Sysno.to_string calls))
        end
      in
      show "unconditionally allowed" uncond;
      show "conditionally allowed (file type / op type)" cond;
      print_newline ())
    (Classification.table1 ());
  let monitored =
    List.filter
      (fun no -> Classification.classify no = Classification.Always_monitored)
      Sysno.all
  in
  Printf.printf "Always monitored by GHUMVEE (%d calls):\n" (List.length monitored);
  List.iter
    (fun line -> Printf.printf "  %s\n" line)
    (wrap 70 (List.map Sysno.to_string monitored));
  Printf.printf "\nIP-MON fast path covers %d of %d supported system calls.\n\n"
    (List.length Classification.ipmon_supported)
    (List.length Sysno.all);
  ignore (Table.create ~title:"" ~header:[ "" ] ())
