bench/main.ml: Ablations Array Dense Fig3 Fig4 Fig5 List Micro Printf String Sys Table1 Table2 Unix
