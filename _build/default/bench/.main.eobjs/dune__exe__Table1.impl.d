bench/table1.ml: Classification List Printf Remon_core Remon_kernel Remon_util String Sysno Table
