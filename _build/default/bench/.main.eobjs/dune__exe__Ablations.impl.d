bench/ablations.ml: Attack Classification Context Cost_model Float Int64 List Mvee Policy Printf Profile Remon_core Remon_sim Remon_util Remon_workloads Runner String Table Vtime
