bench/fig4.ml: Array List Phoronix Printf Remon_util Remon_workloads Runner Stats Table
