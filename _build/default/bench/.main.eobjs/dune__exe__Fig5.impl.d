bench/fig5.ml: Classification Clients List Printf Remon_core Remon_sim Remon_util Remon_workloads Runner Servers Table Vtime
