bench/dense.ml: Classification List Mvee Parsec Phoronix Printf Profile Remon_core Remon_sim Remon_util Remon_workloads Runner Splash Table
