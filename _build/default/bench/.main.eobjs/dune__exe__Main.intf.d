bench/main.mli:
