bench/fig3.ml: Classification List Parsec Printf Profile Remon_core Remon_util Remon_workloads Runner Splash Stats Table
