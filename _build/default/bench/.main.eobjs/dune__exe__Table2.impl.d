bench/table2.ml: Classification Clients List Remon_core Remon_sim Remon_util Remon_workloads Runner Servers Spec Stats Table Vtime
